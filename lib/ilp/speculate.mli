(** Control speculation (Sections 2.2, 4.2, 4.3), applied in ILP-CS only:
    predicate promotion of guarded loads in predicated regions, and marking
    of loads below superblock side exits so the scheduler may hoist them.
    Under the [General] model the marked loads complete eagerly (wild
    loads); under [Sentinel] they defer as NaT and a chk.s recovers. *)

type model = General | Sentinel

type params = {
  model : model;
  promote : bool;
  hoist_marks : bool;
  max_promotions_per_block : int;
}

val default_params : params

type stats = {
  mutable promoted : int;
  mutable marked : int;
  mutable checks_inserted : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** True when the function was mutated. *)
val run_func : ?params:params -> Epic_ir.Func.t -> bool
val run : ?params:params -> Epic_ir.Program.t -> unit
