(** Loop peeling (Figure 3(b)): loops whose profile shows an expected trip
    count near one — the crafty Evaluate() pattern — have one iteration
    pulled out in front; the original loop remains as a (cold or lukewarm)
    remainder.  The peeled, branch-in-free copy can then be absorbed into a
    surrounding trace, which is where the ILP benefit materializes. *)

type params = {
  max_avg_trips : float;
  min_avg_trips : float;
  max_body_instrs : int;
  growth_budget : float;
  mark_remainder_cold : bool;
}

val default_params : params

type stats = { mutable loops_peeled : int; mutable peel_instrs : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** Returns the number of loops peeled. *)
val run_func :
  ?cache:Epic_analysis.Cache.t -> ?params:params -> Epic_ir.Func.t -> int

val run :
  ?cache:Epic_analysis.Cache.t -> ?params:params -> Epic_ir.Program.t -> int
