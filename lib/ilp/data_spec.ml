(* Data speculation (the paper's Section 2 "future work", implemented here
   as an extension): loads held below may-aliasing stores only because the
   pointer analysis cannot prove independence are converted to ADVANCED
   loads (ld.a).  The scheduler is then free to hoist them above the stores;
   an ALAT check (chk.a) at the original position recovers by reloading when
   a store actually overlapped.

   This is exactly the gap scenario the paper describes: "pointer analysis
   is unable to resolve critical spurious dependences in otherwise highly-
   parallel loops.  A limited initial application ... is providing a 5%
   speedup."  The heuristic is correspondingly conservative: only loads in
   hot blocks whose blocking store dependence comes from unknown or merely
   overlapping tags (never from a provably-equal access) are advanced. *)

open Epic_ir
open Epic_analysis

type params = {
  min_block_weight : float;
  max_advances_per_block : int;
  window : int; (* only consider stores at most this many instrs above *)
}

let default_params = { min_block_weight = 16.0; max_advances_per_block = 8; window = 24 }

type stats = { mutable advanced : int; mutable checks : int }

let stats_key = Domain.DLS.new_key (fun () -> { advanced = 0; checks = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).advanced <- 0;
  (stats ()).checks <- 0

(* Stores within [window] instructions above [idx] that may alias [ld] —
   the spurious dependences blocking hoisting. *)
let blocking_stores (instrs : Instr.t array) (idx : int) (window : int) =
  let ld = instrs.(idx) in
  let rec scan k acc =
    if k < 0 || idx - k > window then acc
    else
      let i = instrs.(k) in
      if Instr.is_store i && Memdep.may_alias i ld then scan (k - 1) (i :: acc)
      else if Instr.is_call i then acc (* calls block advancing entirely *)
      else scan (k - 1) acc
  in
  scan (idx - 1) []

(* A store *provably* hitting the same location (identical single-element
   tag) is a real dependence, not a spurious one: do not speculate it. *)
let provably_same (st : Instr.t) (ld : Instr.t) =
  match (st.Instr.attrs.Instr.mem_tag, ld.Instr.attrs.Instr.mem_tag) with
  | Some [ a ], Some [ b ] -> a = b
  | _ -> false

let insert_check (b : Block.t) (ld : Instr.t) =
  match (ld.Instr.op, ld.Instr.dsts, ld.Instr.srcs) with
  | Opcode.Ld (sz, _), [ d ], [ addr ] ->
      let chk =
        Instr.create ?pred:ld.Instr.pred (Opcode.Chka sz)
          ~srcs:[ Operand.Reg d; addr ]
      in
      chk.Instr.attrs.Instr.check_reg <- Some d;
      chk.Instr.attrs.Instr.mem_tag <- ld.Instr.attrs.Instr.mem_tag;
      let rec ins = function
        | [] -> [ chk ]
        | i :: tl when i == ld -> i :: chk :: tl
        | i :: tl -> i :: ins tl
      in
      b.Block.instrs <- ins b.Block.instrs;
      (stats ()).checks <- (stats ()).checks + 1
  | _ -> ()

let run_block (ps : params) (b : Block.t) =
  if b.Block.weight >= ps.min_block_weight then begin
    let instrs = Array.of_list b.Block.instrs in
    let advanced = ref [] in
    Array.iteri
      (fun idx (i : Instr.t) ->
        match i.Instr.op with
        | Opcode.Ld (sz, Opcode.Nonspec)
          when List.length !advanced < ps.max_advances_per_block ->
            let blockers = blocking_stores instrs idx ps.window in
            if
              blockers <> []
              && not (List.exists (fun s -> provably_same s i) blockers)
              (* the address must not be defined by one of the blockers'
                 aliasing chain; register RAW already covers ordering of the
                 address computation *)
            then begin
              i.Instr.op <- Opcode.Ld (sz, Opcode.Spec_advanced);
              i.Instr.attrs.Instr.speculated <- true;
              advanced := i :: !advanced;
              (stats ()).advanced <- (stats ()).advanced + 1
            end
        | _ -> ())
      instrs;
    (* insert the checks after the scan so indices stay stable *)
    List.iter (insert_check b) (List.rev !advanced)
  end

(* Returns true when any load was advanced in this function (every
   mutation bumps the stats counters). *)
let run_func ?(params = default_params) (f : Func.t) =
  let a0 = (stats ()).advanced and c0 = (stats ()).checks in
  List.iter (run_block params) f.Func.blocks;
  (stats ()).advanced <> a0 || (stats ()).checks <> c0

let run ?(params = default_params) (p : Program.t) =
  List.iter (fun f -> ignore (run_func ~params f)) p.Program.funcs
