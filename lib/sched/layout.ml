(* Final code layout: issue groups are packed into IA-64 bundles (16 bytes
   each) and every bundle gets an address, functions laid out sequentially,
   blocks in layout order with cold blocks sunk to the end of each function.
   The simulator's front end fetches through these addresses, which is what
   makes instruction-cache footprint — and the paper's crafty/twolf
   thrashing observations — measurable. *)

open Epic_ir
open Epic_mach

type group = {
  instrs : Instr.t list;
  bundles : Bundle.t list;
  addr : int64; (* address of the first bundle *)
  n_bundles : int;
  n_nops : int;
}

type block_layout = {
  label : string;
  groups : group array;
}

type t = {
  by_block : (string * string, block_layout) Hashtbl.t; (* (func, label) *)
  mutable code_bytes : int;
  mutable total_bundles : int;
  mutable total_nops : int;
}

(* Group a scheduled block's instructions by issue cycle (they are already
   sorted by cycle). *)
let groups_of_block (b : Block.t) =
  let rec go acc cur cur_cycle = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | (i : Instr.t) :: tl ->
        if i.Instr.cycle = cur_cycle || cur = [] then
          go acc (i :: cur) i.Instr.cycle tl
        else go (List.rev cur :: acc) [ i ] i.Instr.cycle tl
  in
  go [] [] (-1) b.Block.instrs

(* Sink cold blocks to the end of the function, keeping control explicit. *)
let sink_cold_blocks (f : Func.t) =
  ignore (Epic_opt.Jumpopt.materialize_fallthroughs f);
  Func.layout_cold_last f;
  ignore (Epic_opt.Jumpopt.remove_fallthrough_branches f)

let build (p : Program.t) =
  let t =
    { by_block = Hashtbl.create 256; code_bytes = 0; total_bundles = 0; total_nops = 0 }
  in
  let addr = ref Program.code_base in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let group_instrs = groups_of_block b in
          let bundles, ranges = Bundle.pack_block group_instrs in
          let base = !addr in
          List.iter
            (fun (bu : Bundle.t) ->
              bu.Bundle.address <- !addr;
              addr := Int64.add !addr Bundle.bundle_bytes)
            bundles;
          let bundle_arr = Array.of_list bundles in
          t.total_bundles <- t.total_bundles + Array.length bundle_arr;
          Array.iter
            (fun bu -> t.total_nops <- t.total_nops + Bundle.nop_count bu)
            bundle_arr;
          (* nop retire attribution: a bundle's nops belong to the first
             group that occupies it *)
          let nop_owner = Array.make (Array.length bundle_arr) (-1) in
          List.iteri
            (fun gi (first, last) ->
              for k = first to min last (Array.length bundle_arr - 1) do
                if nop_owner.(k) < 0 then nop_owner.(k) <- gi
              done)
            ranges;
          let groups =
            List.mapi
              (fun gi (instrs, (first, last)) ->
                let last = min last (Array.length bundle_arr - 1) in
                let n_nops = ref 0 in
                Array.iteri
                  (fun k bu ->
                    if nop_owner.(k) = gi then n_nops := !n_nops + Bundle.nop_count bu)
                  bundle_arr;
                {
                  instrs;
                  bundles =
                    (if Array.length bundle_arr = 0 then []
                     else Array.to_list (Array.sub bundle_arr first (last - first + 1)));
                  addr = Int64.add base (Int64.mul (Int64.of_int first) Bundle.bundle_bytes);
                  n_bundles = (if Array.length bundle_arr = 0 then 0 else last - first + 1);
                  n_nops = !n_nops;
                })
              (List.combine group_instrs ranges)
          in
          Hashtbl.replace t.by_block (f.Func.name, b.Block.label)
            { label = b.Block.label; groups = Array.of_list groups })
        f.Func.blocks;
      (* pad between functions to a cache-line boundary *)
      let line = Int64.of_int (Itanium.l1i_line ()) in
      let rem = Int64.rem !addr line in
      if not (Int64.equal rem 0L) then addr := Int64.add !addr (Int64.sub line rem))
    p.Program.funcs;
  t.code_bytes <- Int64.to_int (Int64.sub !addr Program.code_base);
  t

let block_layout t fname label = Hashtbl.find_opt t.by_block (fname, label)

(* Static code size in bundles (the paper's code-growth metric is static
   size; ours is measured post-scheduling, nops included). *)
let static_bundles t = t.total_bundles
