(** Cycle-driven list scheduling against the Itanium 2 resource model: every
    instruction gets an issue cycle and blocks are reordered to (cycle,
    dependence-consistent order).  The [reorder:false] mode schedules in
    strict program order — the GCC 3.2 stand-in, which performed no global
    scheduling on IA-64. *)

type stats = {
  mutable blocks : int;
  mutable planned_ops : int;
  mutable planned_cycles : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit

val schedule_block :
  Epic_ir.Func.t -> Epic_analysis.Liveness.t -> Epic_ir.Block.t -> unit

val run_func :
  ?cache:Epic_analysis.Cache.t -> ?reorder:bool -> Epic_ir.Func.t -> unit
val run :
  ?cache:Epic_analysis.Cache.t -> ?reorder:bool -> Epic_ir.Program.t -> unit
