(* Cycle-driven list scheduling of each block against the Itanium 2 resource
   model.  Produces the compiler's plan of execution: every instruction gets
   an issue cycle (relative to block entry), and the block's instruction list
   is reordered to (cycle, original-order) so an in-order six-issue machine
   can simply sweep it.  Latency-0 predecessors must be placed no later and,
   within the same cycle, earlier in program order — the emission order
   guarantees this. *)

open Epic_ir
open Epic_analysis
open Epic_mach

type stats = {
  mutable blocks : int;
  mutable planned_ops : int;
  mutable planned_cycles : int;
}

let stats_key = Domain.DLS.new_key (fun () -> { blocks = 0; planned_ops = 0; planned_cycles = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).blocks <- 0;
  (stats ()).planned_ops <- 0;
  (stats ()).planned_cycles <- 0

let schedule_block (f : Func.t) (live : Liveness.t) (b : Block.t) =
  let g = Dag.build f live b in
  let n = Array.length g.Dag.instrs in
  if n = 0 then ()
  else begin
    let prio = Dag.priorities g in
    let remaining_preds = Array.make n 0 in
    Array.iteri (fun j ps -> remaining_preds.(j) <- List.length ps) g.Dag.preds;
    (* earliest cycle each instruction may issue, given placed predecessors *)
    let earliest = Array.make n 0 in
    let placed = Array.make n false in
    let cycle_of = Array.make n (-1) in
    let emitted = ref [] in
    let n_placed = ref 0 in
    let cycle = ref 0 in
    while !n_placed < n do
      let caps = Itanium.fresh_caps () in
      (* candidates: all preds placed, earliest <= cycle; latency-0 preds in
         the same cycle are fine because candidates are scanned in an order
         consistent with the DAG (by priority, ties by program order) and
         appended after their predecessors. *)
      let progress = ref true in
      while !progress do
        progress := false;
        (* collect ready instrs *)
        let ready = ref [] in
        for j = 0 to n - 1 do
          if (not placed.(j)) && remaining_preds.(j) = 0 && earliest.(j) <= !cycle
          then ready := j :: !ready
        done;
        let ready =
          List.sort
            (fun a b ->
              match compare prio.(b) prio.(a) with 0 -> compare a b | c -> c)
            !ready
        in
        List.iter
          (fun j ->
            if (not placed.(j)) && Itanium.take caps g.Dag.instrs.(j) then begin
              placed.(j) <- true;
              cycle_of.(j) <- !cycle;
              emitted := j :: !emitted;
              incr n_placed;
              progress := true;
              (* release successors *)
              List.iter
                (fun (s, lat) ->
                  remaining_preds.(s) <- remaining_preds.(s) - 1;
                  let e = !cycle + lat in
                  if e > earliest.(s) then earliest.(s) <- e)
                g.Dag.succs.(j)
            end)
          ready
      done;
      incr cycle
    done;
    (* rebuild the block in emission order with cycles annotated *)
    let order = List.rev !emitted in
    let instrs =
      List.map
        (fun j ->
          let i = g.Dag.instrs.(j) in
          i.Instr.cycle <- cycle_of.(j);
          i)
        order
    in
    (* stable by cycle (emission order already respects program order within
       a cycle for dependent pairs) *)
    b.Block.instrs <-
      List.stable_sort
        (fun (a : Instr.t) (b' : Instr.t) -> compare a.Instr.cycle b'.Instr.cycle)
        instrs;
    (stats ()).blocks <- (stats ()).blocks + 1;
    (stats ()).planned_ops <- (stats ()).planned_ops + n;
    (stats ()).planned_cycles <- (stats ()).planned_cycles + !cycle
  end

(* Program-order scheduling: instructions keep their order; an instruction
   joins the current issue group only if its dependences and the resource
   model allow, otherwise the group is cut.  This models a traditional
   compiler (our GCC 3.2 stand-in) that performs no global instruction
   scheduling — it still benefits from bundle-level parallelism of adjacent
   independent operations, and nothing more. *)
let schedule_block_inorder (f : Func.t) (live : Liveness.t) (b : Block.t) =
  let g = Dag.build f live b in
  let n = Array.length g.Dag.instrs in
  if n > 0 then begin
    let earliest = Array.make n 0 in
    let cycle = ref 0 in
    let caps = ref (Itanium.fresh_caps ()) in
    for j = 0 to n - 1 do
      let i = g.Dag.instrs.(j) in
      if earliest.(j) > !cycle then begin
        cycle := earliest.(j);
        caps := Itanium.fresh_caps ()
      end;
      while not (Itanium.take !caps i) do
        incr cycle;
        caps := Itanium.fresh_caps ()
      done;
      i.Instr.cycle <- !cycle;
      List.iter
        (fun (s, lat) ->
          let e = !cycle + lat in
          if e > earliest.(s) then earliest.(s) <- e)
        g.Dag.succs.(j)
    done;
    (stats ()).blocks <- (stats ()).blocks + 1;
    (stats ()).planned_ops <- (stats ()).planned_ops + n;
    (stats ()).planned_cycles <- (stats ()).planned_cycles + !cycle + 1
  end

let run_func ?cache ?(reorder = true) (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let live = Cache.liveness cache f in
  List.iter
    (if reorder then schedule_block f live else schedule_block_inorder f live)
    f.Func.blocks;
  (* scheduling reorders instructions within blocks (and always stamps
     issue cycles); only CFG-free global facts are kept *)
  Cache.invalidate cache ~preserve:Cache.[ Callgraph; Points_to ] f.Func.name

let run ?cache ?(reorder = true) (p : Program.t) =
  List.iter (run_func ?cache ~reorder) p.Program.funcs
