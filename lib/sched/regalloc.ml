(* Register allocation: linear scan over whole-function live intervals, with
   loop-extension of intervals, mapping virtual registers onto the IA-64
   register files.  Integer values are placed in the register stack
   (r32-r127) first — their count, recorded as [n_stacked], drives the
   register stack engine cost model of Section 4.4 — and spill code goes to
   the memory stack frame.

   Calling convention note (see DESIGN.md): parameters and returns are
   carried by the call instruction itself and the simulator gives each frame
   its own register file, so allocation has no ABI constraints; what it
   models is pressure (stacked-register consumption and spill code). *)

open Epic_ir
open Epic_analysis

exception Out_of_registers of string

(* Reserved physical registers never allocated. *)
let int_spill_temp1 = Reg.phys 2 Reg.Int
let int_spill_temp2 = Reg.phys 3 Reg.Int
let flt_spill_temp1 = Reg.phys 6 Reg.Flt
let flt_spill_temp2 = Reg.phys 7 Reg.Flt

(* Allocation pools.  Scratch integer registers serve values that do not
   live across a call; the register stack (r32-r127) serves call-crossing
   values — matching IA-64 conventions and keeping [n_stacked], the RSE
   traffic driver, to what genuinely must survive calls. *)
let int_scratch_pool = List.init 18 (fun i -> 14 + i)
let int_stacked_pool = List.init 96 (fun i -> 32 + i)

let flt_pool = List.init 120 (fun i -> 8 + i)
let prd_pool = List.init 62 (fun i -> 1 + i)

type interval = {
  vreg : Reg.t;
  mutable first : int;
  mutable last : int;
  mutable occurrences : int;
}

type stats = {
  mutable spilled_vregs : int;
  mutable spill_code : int;
}

let stats_key = Domain.DLS.new_key (fun () -> { spilled_vregs = 0; spill_code = 0 })
let stats () = Domain.DLS.get stats_key
let reset_stats () =
  (stats ()).spilled_vregs <- 0;
  (stats ()).spill_code <- 0

(* Linearize: assign positions to all instructions in layout order; returns
   per-block (start, end) position ranges. *)
let positions (f : Func.t) =
  let pos = ref 0 in
  let ranges = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      let start = !pos in
      List.iter (fun _ -> incr pos) b.Block.instrs;
      Hashtbl.replace ranges b.Block.label (start, max start (!pos - 1)))
    f.Func.blocks;
  ranges

(* Compute live intervals for all virtual registers. *)
let intervals (cache : Cache.t) (f : Func.t) =
  let tbl : interval Reg.Tbl.t = Reg.Tbl.create 64 in
  let note (r : Reg.t) pos =
    if not r.Reg.phys then begin
      match Reg.Tbl.find_opt tbl r with
      | Some iv ->
          if pos < iv.first then iv.first <- pos;
          if pos > iv.last then iv.last <- pos;
          iv.occurrences <- iv.occurrences + 1
      | None -> Reg.Tbl.replace tbl r { vreg = r; first = pos; last = pos; occurrences = 1 }
    end
  in
  let pos = ref 0 in
  (* parameters are live from function entry *)
  List.iter (fun p -> note p (-1)) f.Func.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter (fun r -> note r !pos) (Instr.uses i);
          List.iter (fun r -> note r !pos) (Instr.defs i);
          (match i.Instr.attrs.Instr.check_reg with
          | Some r -> note r !pos
          | None -> ());
          incr pos)
        b.Block.instrs)
    f.Func.blocks;
  (* Loop extension: a value can be live around a back edge at positions
     with no occurrence, so an interval overlapping a loop must cover the
     whole loop — but only for registers actually live into the loop header
     (everything else is iteration-local and may be reused freely; without
     this restriction, unrolled hyperblocks exhaust the predicate file). *)
  let ranges = positions f in
  let loops = Cache.loops cache f in
  let live = Cache.liveness cache f in
  List.iter
    (fun (l : Natural_loops.loop) ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) label ->
            match Hashtbl.find_opt ranges label with
            | Some (s, e) -> (min lo s, max hi e)
            | None -> (lo, hi))
          (max_int, min_int) l.Natural_loops.body
      in
      let header_live = Liveness.live_in live l.Natural_loops.header in
      if lo <= hi then
        Reg.Tbl.iter
          (fun r iv ->
            let overlaps = iv.first <= hi && iv.last >= lo in
            if
              overlaps
              && (iv.first < lo || iv.last > hi)
              && Reg.Set.mem r header_live
            then begin
              if iv.first > lo then iv.first <- lo;
              if iv.last < hi then iv.last <- hi
            end)
          tbl)
    loops.Natural_loops.loops;
  Reg.Tbl.fold (fun _ iv acc -> iv :: acc) tbl []

(* Ensure the function has a frame of at least [bytes]; rewrites (or adds)
   the prologue/epilogue sp adjustments and returns unit. *)
let set_frame_size (f : Func.t) (bytes : int) =
  let old = f.Func.frame_bytes in
  if bytes <> old then begin
    f.Func.frame_bytes <- bytes;
    let entry = Func.entry f in
    (* prologue *)
    let has_prologue =
      List.exists
        (fun (i : Instr.t) ->
          i.Instr.op = Opcode.Sub && i.Instr.dsts = [ Reg.sp ]
          &&
          match i.Instr.srcs with
          | [ Operand.Reg r; Operand.Imm _ ] when Reg.equal r Reg.sp ->
              i.Instr.srcs <- [ Operand.Reg Reg.sp; Operand.imm bytes ];
              true
          | _ -> false)
        entry.Block.instrs
    in
    if not has_prologue then
      entry.Block.instrs <-
        Instr.create Opcode.Sub ~dsts:[ Reg.sp ]
          ~srcs:[ Operand.Reg Reg.sp; Operand.imm bytes ]
        :: entry.Block.instrs;
    (* epilogues: the add before each return *)
    List.iter
      (fun (b : Block.t) ->
        let rec fix = function
          | [] -> []
          | (i : Instr.t) :: tl when i.Instr.op = Opcode.Br_ret ->
              if old > 0 then
                (* the preceding add was already rewritten below *)
                i :: fix tl
              else
                Instr.create Opcode.Add ~dsts:[ Reg.sp ]
                  ~srcs:[ Operand.Reg Reg.sp; Operand.imm bytes ]
                :: i :: fix tl
          | i :: tl -> i :: fix tl
        in
        if old > 0 then
          List.iter
            (fun (i : Instr.t) ->
              if
                i.Instr.op = Opcode.Add && i.Instr.dsts = [ Reg.sp ]
                &&
                match i.Instr.srcs with
                | [ Operand.Reg r; Operand.Imm k ]
                  when Reg.equal r Reg.sp && Int64.to_int k = old ->
                    true
                | _ -> false
              then i.Instr.srcs <- [ Operand.Reg Reg.sp; Operand.imm bytes ])
            b.Block.instrs
        else b.Block.instrs <- fix b.Block.instrs)
      f.Func.blocks
  end

(* Linear-scan allocation for one register class.  Returns the assignment
   and the list of spilled intervals. *)
let allocate_class (ivs : interval list) (pool : int list) (cls : Reg.cls) =
  let sorted = List.sort (fun a b -> compare a.first b.first) ivs in
  let free = ref pool in
  let active : (int * interval) list ref = ref [] (* (phys id, iv), by last *)
  and assignment : int Reg.Tbl.t = Reg.Tbl.create 64
  and spilled = ref [] in
  let expire now =
    let dead, alive = List.partition (fun (_, iv) -> iv.last < now) !active in
    List.iter (fun (id, _) -> free := id :: !free) dead;
    active := alive
  in
  List.iter
    (fun iv ->
      expire iv.first;
      match !free with
      | id :: rest ->
          free := rest;
          Reg.Tbl.replace assignment iv.vreg id;
          active := (id, iv) :: !active
      | [] ->
          (* spill the active interval with the furthest end (or this one) *)
          let victim =
            List.fold_left
              (fun (best : (int * interval) option) (id, a) ->
                match best with
                | Some (_, b) when b.last >= a.last -> best
                | _ -> Some (id, a))
              None !active
          in
          (match victim with
          | Some (vid, viv) when viv.last > iv.last && cls <> Reg.Prd ->
              (* steal the victim's register *)
              Reg.Tbl.remove assignment viv.vreg;
              spilled := viv :: !spilled;
              active := List.filter (fun (_, a) -> a != viv) !active;
              Reg.Tbl.replace assignment iv.vreg vid;
              active := (vid, iv) :: !active
          | _ when cls <> Reg.Prd -> spilled := iv :: !spilled
          | _ ->
              raise
                (Out_of_registers
                   "predicate registers exhausted (hyperblock too large)")))
    sorted;
  (assignment, !spilled)

(* Rewrite spill code: each use of a spilled vreg is reloaded from its
   frame slot through a reserved temp; each spilled def stores its temp back.
   Within one instruction the two reserved int temps alternate, so up to two
   spilled sources plus a spilled destination are handled. *)
let insert_spill_code (f : Func.t) (slot_of : Reg.t -> int option) =
  List.iter
    (fun (b : Block.t) ->
      b.Block.instrs <-
        List.concat_map
          (fun (i : Instr.t) ->
            let toggle = ref false in
            let next_int_temp () =
              toggle := not !toggle;
              if !toggle then int_spill_temp1 else int_spill_temp2
            in
            let ftoggle = ref false in
            let next_flt_temp () =
              ftoggle := not !ftoggle;
              if !ftoggle then flt_spill_temp1 else flt_spill_temp2
            in
            let pre = ref [] and post = ref [] in
            let reload (r : Reg.t) off =
              let atmp = next_int_temp () in
              let vtmp = match r.Reg.cls with Reg.Flt -> next_flt_temp () | _ -> atmp in
              pre :=
                !pre
                @ [
                    Instr.create Opcode.Add ~dsts:[ atmp ]
                      ~srcs:[ Operand.Reg Reg.sp; Operand.imm off ];
                    Instr.create (Opcode.Ld (Opcode.B8, Opcode.Nonspec))
                      ~dsts:[ vtmp ] ~srcs:[ Operand.Reg atmp ];
                  ];
              (stats ()).spill_code <- (stats ()).spill_code + 2;
              vtmp
            in
            let spill_store (r : Reg.t) off =
              let vtmp =
                match r.Reg.cls with
                | Reg.Flt -> next_flt_temp ()
                | _ -> next_int_temp ()
              in
              let atmp =
                (* the other int temp, so the value survives *)
                if Reg.equal vtmp int_spill_temp1 then int_spill_temp2
                else int_spill_temp1
              in
              post :=
                !post
                @ [
                    Instr.create Opcode.Add ~dsts:[ atmp ]
                      ~srcs:[ Operand.Reg Reg.sp; Operand.imm off ];
                    Instr.create (Opcode.St Opcode.B8)
                      ~srcs:[ Operand.Reg atmp; Operand.Reg vtmp ];
                  ];
              (stats ()).spill_code <- (stats ()).spill_code + 2;
              vtmp
            in
            let subst_use (r : Reg.t) =
              match slot_of r with Some off -> Some (reload r off) | None -> None
            in
            Instr.substitute_uses subst_use i;
            i.Instr.dsts <-
              List.map
                (fun (r : Reg.t) ->
                  match slot_of r with
                  | Some off -> spill_store r off
                  | None -> r)
                i.Instr.dsts;
            !pre @ [ i ] @ !post)
          b.Block.instrs)
    f.Func.blocks

(* Integer allocation with call-crossing awareness: non-crossing intervals
   prefer scratch registers, crossing intervals must use the register
   stack. *)
let allocate_int (ivs : interval list) (call_positions : int list) =
  let sorted = List.sort (fun a b -> compare a.first b.first) ivs in
  let crosses iv =
    List.exists (fun c -> c >= iv.first && c < iv.last) call_positions
  in
  let free_scratch = ref int_scratch_pool in
  let free_stacked = ref int_stacked_pool in
  let active : (int * interval) list ref = ref [] in
  let assignment : int Reg.Tbl.t = Reg.Tbl.create 64 in
  let spilled = ref [] in
  let release id =
    if id >= Reg.first_stacked then free_stacked := id :: !free_stacked
    else free_scratch := id :: !free_scratch
  in
  let expire now =
    let dead, alive = List.partition (fun (_, iv) -> iv.last < now) !active in
    List.iter (fun (id, _) -> release id) dead;
    active := alive
  in
  List.iter
    (fun iv ->
      expire iv.first;
      let take =
        if crosses iv then
          match !free_stacked with
          | id :: rest ->
              free_stacked := rest;
              Some id
          | [] -> None
        else
          match (!free_scratch, !free_stacked) with
          | id :: rest, _ ->
              free_scratch := rest;
              Some id
          | [], id :: rest ->
              free_stacked := rest;
              Some id
          | [], [] -> None
      in
      match take with
      | Some id ->
          Reg.Tbl.replace assignment iv.vreg id;
          active := (id, iv) :: !active
      | None -> (
          (* spill the active interval with the furthest end, if further *)
          let victim =
            List.fold_left
              (fun best (id, a) ->
                match best with
                | Some (_, (b : interval)) when b.last >= a.last -> best
                | _ -> Some (id, a))
              None !active
          in
          match victim with
          | Some (vid, viv) when viv.last > iv.last ->
              Reg.Tbl.remove assignment viv.vreg;
              spilled := viv :: !spilled;
              active := List.filter (fun (_, a) -> a != viv) !active;
              Reg.Tbl.replace assignment iv.vreg vid;
              active := (vid, iv) :: !active
          | _ -> spilled := iv :: !spilled))
    sorted;
  (assignment, !spilled)

let call_positions (f : Func.t) =
  let pos = ref 0 in
  let calls = ref [] in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.is_call i then calls := !pos :: !calls;
          incr pos)
        b.Block.instrs)
    f.Func.blocks;
  List.rev !calls

let run_func ?cache (f : Func.t) =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let ivs = intervals cache f in
  let by_class c = List.filter (fun iv -> iv.vreg.Reg.cls = c) ivs in
  let int_asg, int_spills = allocate_int (by_class Reg.Int) (call_positions f) in
  let flt_asg, flt_spills = allocate_class (by_class Reg.Flt) flt_pool Reg.Flt in
  let prd_asg, _ = allocate_class (by_class Reg.Prd) prd_pool Reg.Prd in
  (* frame slots for spills *)
  let spill_base = f.Func.frame_bytes in
  let slot_tbl : int Reg.Tbl.t = Reg.Tbl.create 8 in
  List.iteri
    (fun k iv -> Reg.Tbl.replace slot_tbl iv.vreg (spill_base + (8 * k)))
    (int_spills @ flt_spills);
  let n_spills = List.length int_spills + List.length flt_spills in
  (stats ()).spilled_vregs <- (stats ()).spilled_vregs + n_spills;
  if n_spills > 0 then set_frame_size f (spill_base + (8 * n_spills));
  (* rewrite registers *)
  let map (r : Reg.t) =
    if r.Reg.phys then None
    else
      let asg =
        match r.Reg.cls with
        | Reg.Int -> Reg.Tbl.find_opt int_asg r
        | Reg.Flt -> Reg.Tbl.find_opt flt_asg r
        | Reg.Prd -> Reg.Tbl.find_opt prd_asg r
        | Reg.Brr -> None
      in
      Option.map (fun id -> Reg.phys id r.Reg.cls) asg
  in
  Func.iter_instrs f (fun i ->
      Instr.substitute_uses map i;
      Instr.substitute_defs map i;
      match i.Instr.attrs.Instr.check_reg with
      | Some r -> (
          match map r with Some r' -> i.Instr.attrs.Instr.check_reg <- Some r' | None -> ())
      | None -> ());
  f.Func.params <-
    List.map (fun p -> match map p with Some p' -> p' | None -> p) f.Func.params;
  (* spill code for anything left virtual *)
  if n_spills > 0 then
    insert_spill_code f (fun r ->
        if r.Reg.phys then None else Reg.Tbl.find_opt slot_tbl r);
  (* stacked-register usage drives the RSE model *)
  let stacked = Hashtbl.create 16 in
  Func.iter_instrs f (fun i ->
      List.iter
        (fun (r : Reg.t) -> if Reg.is_stacked r then Hashtbl.replace stacked r.Reg.id ())
        (Instr.uses i @ Instr.defs i));
  f.Func.n_stacked <- Hashtbl.length stacked;
  (* allocation always rewrites registers (and may insert spill code), so
     the data-sensitive analyses are stale; the CFG is untouched *)
  Cache.invalidate cache
    ~preserve:Cache.[ Dominance; Loops; Callgraph; Points_to ]
    f.Func.name

let run ?cache (p : Program.t) = List.iter (run_func ?cache) p.Program.funcs
