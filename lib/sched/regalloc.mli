(** Register allocation: linear scan over whole-function live intervals
    (with back-edge extension for header-live values), mapping virtual
    registers onto the IA-64 files.  Call-crossing integer values go to the
    register stack (r32-r127) — their count, [Func.n_stacked], drives the
    RSE cost model of Section 4.4 — and everything else prefers scratch
    registers; overflow spills to the memory frame through reserved
    temporaries. *)

exception Out_of_registers of string
(** Raised only for predicate-file exhaustion; [Epic_core.Driver.compile]
    catches it and retries with less aggressive region formation. *)

type stats = { mutable spilled_vregs : int; mutable spill_code : int }

val stats : unit -> stats
val reset_stats : unit -> unit
val run_func : ?cache:Epic_analysis.Cache.t -> Epic_ir.Func.t -> unit
val run : ?cache:Epic_analysis.Cache.t -> Epic_ir.Program.t -> unit
