(** Causal profiling, COZ-style: "what would speeding THIS up actually buy
    end-to-end?" answered by experiment, not by share-of-profile.

    A conventional profile ranks code by where cycles are spent; that
    ranking is misleading exactly when the paper's questions are
    interesting (a stall category can be large but off the critical
    ranking, a small function can gate everything behind it).  Causal
    profiling instead runs the unmodified program under a matrix of
    {e virtual speedups}: for each target (a function, or one of the nine
    stall categories) and each factor s, the cycles charged to the target
    are scaled by [1 - s] at accounting time
    ({!Epic_sim.Accounting.experiment}) while the clock, the caches, the
    predictor and the program semantics evolve exactly as in the baseline.
    The observed end-to-end total then directly measures the causal effect
    of a local speedup of s.

    For each target the matrix yields a curve of program speedup
    [p(s) = (base - cycles(s)) / base]; its least-squares slope through
    the origin is the target's {e causal slope} — predicted end-to-end
    fraction gained per unit of local speedup — and targets are ranked by
    it: the report is an ordered "optimize this next" list with the
    evidence attached.

    Cross-check invariant (asserted in test/test_causal.ml and by
    {!check_against_sweep}): a category experiment at factor 1.0 charges
    exactly what the corresponding [perfect-*] sweep variant suppresses,
    so per workload the causal deltas of [front-end]/[br-mispredict] must
    equal — and rank identically to — the [perfect-icache]/
    [perfect-predictor] deltas of {!Epic_sweep.Sweep}. *)

type target = Epic_sim.Accounting.target =
  | Target_func of string
  | Target_category of Epic_sim.Accounting.category
  | Target_func_category of string * Epic_sim.Accounting.category

(** Display/CLI name: the category's accounting name ([front-end], [rse],
    ...), the function's own name, or [func:category] for a
    per-(function, category) pair. *)
val target_name : target -> string

(** Inverse of {!target_name}: a known category name parses as that
    category, [f:cat] (with [cat] a known category name) as a
    per-(function, category) pair, anything else as a function target.
    (A function shadowed by a category name can't be targeted by name —
    acceptable, since the workloads' function names are C identifiers and
    the category names are hyphenated.) *)
val parse_target : string -> target

(** [0.10; 0.25; 0.50; 1.00] — the virtual-speedup factors of the default
    matrix. *)
val default_factors : float list

(** One matrix cell reduced to its point on the target's curve. *)
type point = {
  p_factor : float;  (** local virtual speedup s, in (0, 1] *)
  p_cycles : float;  (** end-to-end accounted cycles under it *)
  p_speedup : float;  (** program speedup p = (base - cycles) / base *)
  p_output_ok : bool;  (** output still matches the reference interpreter *)
}

(** A target's causal curve over the factor axis. *)
type curve = {
  k_target : target;
  k_points : point list;  (** ascending factor *)
  k_local_cycles : float;  (** baseline cycles charged to the target *)
  k_local_share : float;  (** local_cycles / base_cycles *)
  k_slope : float;
      (** causal slope: least-squares fit of p = slope * s through the
          origin — predicted end-to-end fraction per unit local speedup *)
  k_linearity : float;
      (** max |p - slope * s| over the points; small = the virtual
          speedup scales linearly, the slope is trustworthy *)
  k_delta_full : float;
      (** cycles saved at factor 1.0 (the perfect-* limit); taken from
          the measured point when factor 1.0 was run, else extrapolated
          as slope * base *)
}

(** One workload's causal profile: targets ranked by causal slope. *)
type wreport = {
  c_workload : string;
  c_base_cycles : float;
  c_base_categories : float array;  (** the nine baseline category totals *)
  c_obs : Epic_obs.Json.t;
      (** the shared observability block of the baseline run
          ({!Epic_core.Export.obs_to_json}) *)
  c_curves : curve list;  (** ranked: best causal slope first *)
  c_output_ok : bool;  (** baseline output matched the reference *)
}

(** Cross-workload aggregate for one target (only over the workloads whose
    plan included it). *)
type agg = {
  g_target : target;
  g_workloads : int;  (** workloads aggregated *)
  g_mean_slope : float;
  g_rank_best : int;  (** best (lowest) rank across workloads, 1-based *)
  g_rank_worst : int;
}

(** Fused-matrix accounting: how many (target, factor) cells the detailed
    simulations actually paid for (DESIGN.md §14). *)
type fusion = {
  fz_cells : int;  (** cells delivered *)
  fz_sims : int;  (** detailed fused simulations run (one per workload) *)
  fz_resumed : int;  (** of those, resumed from a cached checkpoint prefix *)
}

type report = {
  r_workloads : string list;
  r_factors : float list;  (** ascending *)
  r_reports : wreport list;  (** workload order *)
  r_aggregate : agg list;  (** by descending mean slope *)
  r_fusion : fusion option;  (** [None] = the serial per-cell path ran *)
  r_wall_s : float;
}

(** The experiment planner: the top [top_funcs] functions of the baseline
    PC-sampling profile (descending samples), then every stall category
    with nonzero baseline cycles except [unstalled] (speeding up unstalled
    execution is the compiler's job, not a bottleneck diagnosis), then —
    with [split_funcs > 0] — per-(function, category) splits: for each of
    the top [split_funcs] profile-hot functions, one
    {!Target_func_category} per nonzero non-unstalled category of its
    baseline bins ([func_bins], from the baseline accounting), so a
    function's categories can be scaled independently. *)
val plan :
  ?split_funcs:int ->
  ?func_bins:(string * float array) list ->
  top_funcs:int ->
  prof_by_func:(string * int) list ->
  categories:float array ->
  unit ->
  target list

(** Execute the causal matrix on the {!Epic_core.Pool} domain pool in two
    phases, like {!Epic_sweep.Sweep.run}: phase 1 computes each workload's
    reference output and its baseline run (with the trace and PC-sampling
    instruments attached); phase 2 delivers every (workload, target,
    factor) cell.  By default the per-workload (target x factor) grid is
    {e fused} into one detailed simulation carrying every experiment at
    once (the hook lives purely at accounting time, so each fused cell is
    bit-identical to its serial run); [serial:true] keeps the
    one-simulation-per-cell path, the cross-check the CI gate diffs
    against.  Results are in deterministic workload-major order
    regardless of [jobs].

    [targets] fixes one target list for every workload; omitted, each
    workload gets its own plan ({!plan}, with [top_funcs] profile-hot
    functions, default 3, and [split_funcs] per-(function, category)
    splits, default 0).  [factors] defaults to {!default_factors}.
    [compile] substitutes the compile entry point of every baseline and
    serial cell (default {!Epic_core.Driver.default_compile}) and [fused]
    the fused-matrix entry point (default
    {!Epic_core.Driver.default_fused}) — the hooks {!Epic_serve} supplies
    so causal matrices share the session's content-addressed caches and
    reuse checkpoint prefixes across repeated matrices.  [big_inputs]
    substitutes each workload's scaled evaluation input
    ({!Epic_workloads.Workload.scale}).

    @raise Invalid_argument on an unknown workload, [jobs < 1], an empty
    factor list or a factor outside (0, 1]. *)
val run :
  ?targets:target list ->
  ?factors:float list ->
  ?top_funcs:int ->
  ?split_funcs:int ->
  ?compile:Epic_core.Driver.compile_fn ->
  ?fused:Epic_core.Driver.fused_fn ->
  ?serial:bool ->
  ?big_inputs:bool ->
  ?progress:bool ->
  jobs:int ->
  workloads:string list ->
  unit ->
  report

(** The workload's report.  @raise Not_found if absent. *)
val report_of : report -> string -> wreport

(** The target's curve in a workload report, if it was in the plan. *)
val curve_of : wreport -> target -> curve option

(** Cells whose simulated output diverged from the reference interpreter,
    as (workload, target, factor). *)
val mismatches : report -> (string * target * float) list

(** One workload's row of the causal-vs-sweep cross-check. *)
type check_row = {
  ck_workload : string;
  ck_causal_fe : float;  (** causal Δcycles at 1.0, front-end target *)
  ck_causal_bp : float;  (** causal Δcycles at 1.0, br-mispredict target *)
  ck_sweep_fe : float;  (** perfect-icache sweep saving (base - variant) *)
  ck_sweep_bp : float;  (** perfect-predictor sweep saving *)
  ck_order_ok : bool;
      (** causal and sweep rank the two categories identically *)
}

(** Run the [perfect-icache] / [perfect-predictor] sweep on the report's
    workloads and check the invariant: per workload, the causal ranking of
    the front-end and br-mispredict categories must agree with the sweep
    delta ordering (the two paths suppress the same charges by independent
    mechanisms).  [compile] is forwarded to the sweep.
    @raise Invalid_argument if the report lacks the front-end or
    br-mispredict target for some workload. *)
val check_against_sweep :
  ?progress:bool ->
  ?compile:Epic_core.Driver.compile_fn ->
  jobs:int ->
  report ->
  check_row list

(** One row of the factor-1.0 local-exactness check: a target measured at
    factor 1.0, the end-to-end cycles it saved, and the baseline cycles
    charged to it. *)
type local_row = {
  lk_workload : string;
  lk_target : target;
  lk_causal : float;  (** measured Δcycles at factor 1.0 *)
  lk_local : float;  (** baseline cycles charged to the target *)
  lk_ok : bool;  (** equal within 1e-9 relative *)
}

(** The factor-1.0 cross-check generalized to every target kind: scaling a
    target's charges to zero must save exactly the cycles the baseline
    charged to it (within float-summation reassociation, 1e-9 relative).
    Function and (function, category) targets have no perfect-* sweep
    variant to diff against; the baseline's own accounting bins are the
    independent side of the identity.  One row per (workload, target) with
    a measured factor-1.0 point. *)
val check_local_exactness : report -> local_row list

(** The causal document.  Schema (stable; additions only): [causal],
    [sample_period], [workloads], [factors], [workload_reports] (workload,
    base_cycles, output_matches, categories, obs, curves — each with
    target, kind, local_cycles, local_share, slope, linearity, delta_full
    and points), [aggregate] and [total_wall_s].  Pass through
    {!Epic_core.Export.normalize_time} before diffing. *)
val to_json : report -> Epic_obs.Json.t

(** Human-readable causal report: per-workload ranked tornado of causal
    slopes (with local share for contrast — the COZ argument is visible
    where they disagree), then the cross-workload aggregate. *)
val print_report : Format.formatter -> report -> unit
