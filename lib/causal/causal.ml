(* Causal profiling via virtual speedups (COZ transplanted to the
   simulator).  See causal.mli for the contract and DESIGN.md §11 for why
   the experiment lives in the accounting layer and how the factor-1.0
   category experiments tie to the perfect-* sweep variants. *)

open Epic_core
open Epic_workloads
module Acc = Epic_sim.Accounting
module Json = Epic_obs.Json

type target = Acc.target =
  | Target_func of string
  | Target_category of Acc.category
  | Target_func_category of string * Acc.category

let target_name = function
  | Target_func f -> f
  | Target_category c -> Acc.name c
  | Target_func_category (f, c) -> f ^ ":" ^ Acc.name c

let parse_target s =
  match Acc.category_of_name s with
  | Some c -> Target_category c
  | None -> (
      (* "func:category" names a per-(function, category) pair; the mini-C
         function names are C identifiers, so ':' is unambiguous *)
      match String.index_opt s ':' with
      | Some i -> (
          let f = String.sub s 0 i in
          let cname = String.sub s (i + 1) (String.length s - i - 1) in
          match Acc.category_of_name cname with
          | Some c when f <> "" -> Target_func_category (f, c)
          | _ -> Target_func s)
      | None -> Target_func s)

let default_factors = [ 0.10; 0.25; 0.50; 1.00 ]

type point = {
  p_factor : float;
  p_cycles : float;
  p_speedup : float;
  p_output_ok : bool;
}

type curve = {
  k_target : target;
  k_points : point list;
  k_local_cycles : float;
  k_local_share : float;
  k_slope : float;
  k_linearity : float;
  k_delta_full : float;
}

type wreport = {
  c_workload : string;
  c_base_cycles : float;
  c_base_categories : float array;
  c_obs : Json.t;
  c_curves : curve list;
  c_output_ok : bool;
}

type agg = {
  g_target : target;
  g_workloads : int;
  g_mean_slope : float;
  g_rank_best : int;
  g_rank_worst : int;
}

(* Fused-matrix accounting (DESIGN.md §14): how many cells the detailed
   simulations actually paid for. *)
type fusion = {
  fz_cells : int; (* (target x factor) cells delivered *)
  fz_sims : int; (* detailed fused simulations run (one per workload) *)
  fz_resumed : int; (* of those, resumed from a cached checkpoint prefix *)
}

type report = {
  r_workloads : string list;
  r_factors : float list;
  r_reports : wreport list;
  r_aggregate : agg list;
  r_fusion : fusion option; (* None = the serial per-cell path ran *)
  r_wall_s : float;
}

(* Top profile-hot functions first (descending samples, the profiler's
   order), then every nonzero stall category.  Unstalled is excluded: its
   cycles are the work itself, and "make the work free" ranks first on
   every program without diagnosing anything. *)
let plan ?(split_funcs = 0) ?(func_bins = []) ~top_funcs ~prof_by_func
    ~categories () =
  let funcs =
    List.filteri (fun i _ -> i < top_funcs) prof_by_func
    |> List.map (fun (f, _) -> Target_func f)
  in
  let cats =
    List.filter_map
      (fun c ->
        if c <> Acc.Unstalled && categories.(Acc.index c) > 0. then
          Some (Target_category c)
        else None)
      Acc.all_categories
  in
  (* Per-(function, category) splits of the top profile-hot functions: one
     target per nonzero stall category of the function (unstalled excluded
     for the same reason as program-wide), so a function's categories can
     be scaled — and ranked — independently. *)
  let splits =
    List.filteri (fun i _ -> i < split_funcs) prof_by_func
    |> List.concat_map (fun (f, _) ->
           match List.assoc_opt f func_bins with
           | None -> []
           | Some bins ->
               List.filter_map
                 (fun c ->
                   if c <> Acc.Unstalled && bins.(Acc.index c) > 0. then
                     Some (Target_func_category (f, c))
                   else None)
                 Acc.all_categories)
  in
  funcs @ cats @ splits

(* Phase-1 product: everything a workload's phase-2 cells and report need,
   reduced to plain shareable data (the machine state itself stays in the
   domain that ran it). *)
type base = {
  b_reference : int * string;
  b_cycles : float;
  b_categories : float array;
  b_func_bins : (string * float array) list;
      (* per-function copies of the nine baseline bins: local cycles of
         both function and (function, category) targets *)
  b_prof_by_func : (string * int) list;
  b_obs : Json.t;
  b_output_ok : bool;
  b_groups : int;
      (* issue groups the baseline executed: sizes the checkpoint-prefix
         position the fused path may reuse *)
}

let run_baseline ~(compile : Driver.compile_fn) (w : Workload.t) =
  let config = Experiments.config_for w Config.ILP_CS in
  let compiled =
    compile ~config ~desc:None ~train:w.Workload.train w.Workload.source
  in
  let trace = Epic_obs.Trace.create () in
  let profile = Epic_obs.Profile.create ~period:Experiments.sample_period () in
  let code, out, st = Driver.run ~trace ~profile compiled w.Workload.reference in
  let ref_code, ref_out = Experiments.reference_output w in
  let acc = st.Epic_sim.Machine.acc in
  {
    b_reference = (ref_code, ref_out);
    b_cycles = Acc.total acc;
    b_categories = Array.copy acc.Acc.totals;
    b_func_bins =
      List.map (fun f -> (f, Array.copy (Acc.bins acc f))) (Acc.functions acc);
    b_prof_by_func = Epic_obs.Profile.by_func profile;
    b_obs = Export.obs_to_json ~trace ~profile ();
    b_output_ok = code = ref_code && out = ref_out;
    b_groups = st.Epic_sim.Machine.c.Epic_sim.Machine.groups;
  }

(* One matrix cell: recompile from source (resets the domain-local
   instruction-id counter, so ids are identical whichever domain runs the
   cell) and simulate under the virtual speedup.  The binary is the same
   as the baseline's — the experiment only exists at accounting time. *)
let run_cell ~(compile : Driver.compile_fn) ~(base : base) (w : Workload.t)
    (t : target) (factor : float) =
  let config = Experiments.config_for w Config.ILP_CS in
  let compiled =
    compile ~config ~desc:None ~train:w.Workload.train w.Workload.source
  in
  let experiment = { Acc.target = t; speedup = factor } in
  let code, out, st = Driver.run ~experiment compiled w.Workload.reference in
  let ref_code, ref_out = base.b_reference in
  let cycles = Acc.total st.Epic_sim.Machine.acc in
  {
    p_factor = factor;
    p_cycles = cycles;
    p_speedup = (base.b_cycles -. cycles) /. base.b_cycles;
    p_output_ok = code = ref_code && out = ref_out;
  }

let curve_of_points ~(base : base) (t : target) (points : point list) =
  let func_bins f = List.assoc_opt f base.b_func_bins in
  let local =
    match t with
    | Target_category c -> base.b_categories.(Acc.index c)
    | Target_func f -> (
        match func_bins f with
        | Some b -> Array.fold_left ( +. ) 0. b
        | None -> 0.)
    | Target_func_category (f, c) -> (
        match func_bins f with Some b -> b.(Acc.index c) | None -> 0.)
  in
  (* least-squares through the origin: slope = Σ s·p / Σ s² *)
  let num =
    List.fold_left (fun s p -> s +. (p.p_factor *. p.p_speedup)) 0. points
  and den =
    List.fold_left (fun s p -> s +. (p.p_factor *. p.p_factor)) 0. points
  in
  let slope = if den = 0. then 0. else num /. den in
  let linearity =
    List.fold_left
      (fun m p -> Float.max m (abs_float (p.p_speedup -. (slope *. p.p_factor))))
      0. points
  in
  let delta_full =
    match List.find_opt (fun p -> p.p_factor = 1.0) points with
    | Some p -> base.b_cycles -. p.p_cycles
    | None -> slope *. base.b_cycles
  in
  {
    k_target = t;
    k_points = points;
    k_local_cycles = local;
    k_local_share = local /. base.b_cycles;
    k_slope = slope;
    k_linearity = linearity;
    k_delta_full = delta_full;
  }

let rank_curves curves =
  List.sort
    (fun a b ->
      match compare b.k_slope a.k_slope with
      | 0 -> compare (target_name a.k_target) (target_name b.k_target)
      | n -> n)
    curves

let aggregate (reports : wreport list) =
  (* per-target (slope, 1-based rank) pairs over the workloads that
     planned it *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun wr ->
      List.iteri
        (fun i k ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tbl k.k_target)
          in
          Hashtbl.replace tbl k.k_target ((k.k_slope, i + 1) :: prev))
        wr.c_curves)
    reports;
  Hashtbl.fold
    (fun t entries acc ->
      let n = List.length entries in
      let mean =
        List.fold_left (fun s (sl, _) -> s +. sl) 0. entries /. float_of_int n
      in
      {
        g_target = t;
        g_workloads = n;
        g_mean_slope = mean;
        g_rank_best = List.fold_left (fun m (_, r) -> min m r) max_int entries;
        g_rank_worst = List.fold_left (fun m (_, r) -> max m r) 0 entries;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.g_mean_slope a.g_mean_slope with
         | 0 -> compare (target_name a.g_target) (target_name b.g_target)
         | n -> n)

let run ?targets ?(factors = default_factors) ?(top_funcs = 3)
    ?(split_funcs = 0) ?(compile = Driver.default_compile)
    ?(fused = Driver.default_fused) ?(serial = false) ?(big_inputs = false)
    ?(progress = false) ~jobs ~workloads () =
  let t0 = Sys.time () in
  if factors = [] then invalid_arg "Causal.run: empty factor list";
  List.iter
    (fun f ->
      if not (f > 0. && f <= 1.) then
        invalid_arg (Fmt.str "Causal.run: factor %g outside (0, 1]" f))
    factors;
  let factors = List.sort_uniq compare factors in
  let ws = Array.of_list (List.map Suite.find_exn workloads) in
  let ws = if big_inputs then Array.map Workload.scale ws else ws in
  (* Phase 1: per-workload reference + instrumented baseline, shared
     read-only by that workload's cells. *)
  let bases =
    Pool.map ~jobs
      (fun (w : Workload.t) ->
        if progress then Fmt.epr "  causal baseline %s...@." w.Workload.short;
        run_baseline ~compile w)
      ws
  in
  let plans =
    Array.map
      (fun (b : base) ->
        match targets with
        | Some ts -> ts
        | None ->
            plan ~split_funcs ~func_bins:b.b_func_bins ~top_funcs
              ~prof_by_func:b.b_prof_by_func ~categories:b.b_categories ())
      bases
  in
  (* Phase 2: the full (workload x target x factor) matrix, deterministic
     workload-major order (Pool.map returns index order).  The experiment
     hook lives purely at accounting time, so the per-workload grid fuses
     into ONE detailed simulation carrying every (target, factor)
     experiment at once — per-cell results bit-identical to the serial
     path (each fused accumulator runs the same charge sequence the serial
     run would; CI diffs the two cell-for-cell).  [serial] keeps the
     one-simulation-per-cell path for that cross-check. *)
  let specs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun wi plan_w ->
              List.concat_map
                (fun t -> List.map (fun f -> (wi, t, f)) factors)
                plan_w)
            (Array.to_list plans)))
  in
  let cells, fusion =
    if serial then
      ( Pool.map ~jobs
          (fun (wi, t, f) ->
            let w = ws.(wi) in
            if progress then
              Fmt.epr "  causal %s / %s / %g...@." w.Workload.short
                (target_name t) f;
            run_cell ~compile ~base:bases.(wi) w t f)
          specs,
        None )
    else begin
      (* per-workload experiment lists in the same target-major,
         factor-minor order as [specs] *)
      let wexps =
        Array.map
          (fun plan_w ->
            List.concat_map
              (fun t ->
                List.map (fun f -> { Acc.target = t; speedup = f }) factors)
              plan_w)
          plans
      in
      let results =
        Pool.map ~jobs
          (fun wi ->
            let w = ws.(wi) in
            let exps = wexps.(wi) in
            if exps = [] then None
            else begin
              if progress then
                Fmt.epr "  causal fused %s (%d experiments)...@."
                  w.Workload.short (List.length exps);
              let config = Experiments.config_for w Config.ILP_CS in
              let b = bases.(wi) in
              (* a mid-run prefix: long enough to amortize, early enough
                 that every run reaches it (2+ groups guaranteed) *)
              let prefix_at =
                if b.b_groups >= 2 then Some (b.b_groups / 2) else None
              in
              Some
                (fused ~config ~desc:None ~train:w.Workload.train
                   ~input:w.Workload.reference ~experiments:exps ~prefix_at
                   w.Workload.source)
            end)
          (Array.init (Array.length ws) (fun i -> i))
      in
      (* unpack per-experiment totals back into cells, in [specs] order *)
      let idx = Array.make (Array.length ws) 0 in
      let cells =
        Array.map
          (fun (wi, _, f) ->
            let fz =
              match results.(wi) with
              | Some fz -> fz
              | None -> assert false (* specs nonempty => plan nonempty *)
            in
            let i = idx.(wi) in
            idx.(wi) <- i + 1;
            let b = bases.(wi) in
            let ref_code, ref_out = b.b_reference in
            let cycles =
              Array.fold_left ( +. ) 0. fz.Driver.f_categories.(i)
            in
            {
              p_factor = f;
              p_cycles = cycles;
              p_speedup = (b.b_cycles -. cycles) /. b.b_cycles;
              p_output_ok =
                fz.Driver.f_code = ref_code && fz.Driver.f_output = ref_out;
            })
          specs
      in
      let sims = Array.to_list results |> List.filter_map (fun x -> x) in
      ( cells,
        Some
          {
            fz_cells = Array.length specs;
            fz_sims = List.length sims;
            fz_resumed =
              List.length (List.filter (fun f -> f.Driver.f_resumed) sims);
          } )
    end
  in
  let reports =
    List.mapi
      (fun wi (w : Workload.t) ->
        let b = bases.(wi) in
        let curves =
          List.map
            (fun t ->
              let points =
                List.concat
                  (List.mapi
                     (fun i (wj, tj, _) ->
                       if wj = wi && tj = t then [ cells.(i) ] else [])
                     (Array.to_list specs))
              in
              curve_of_points ~base:b t points)
            plans.(wi)
        in
        {
          c_workload = w.Workload.short;
          c_base_cycles = b.b_cycles;
          c_base_categories = b.b_categories;
          c_obs = b.b_obs;
          c_curves = rank_curves curves;
          c_output_ok = b.b_output_ok;
        })
      (Array.to_list ws)
  in
  {
    r_workloads = workloads;
    r_factors = factors;
    r_reports = reports;
    r_aggregate = aggregate reports;
    r_fusion = fusion;
    r_wall_s = Sys.time () -. t0;
  }

let report_of (r : report) w =
  List.find (fun wr -> wr.c_workload = w) r.r_reports

let curve_of (wr : wreport) t =
  List.find_opt (fun k -> k.k_target = t) wr.c_curves

let mismatches (r : report) =
  List.concat_map
    (fun wr ->
      List.concat_map
        (fun k ->
          List.filter_map
            (fun p ->
              if p.p_output_ok then None
              else Some (wr.c_workload, k.k_target, p.p_factor))
            k.k_points)
        wr.c_curves)
    r.r_reports

(* --- Cross-check against the perfect-* sweep variants -------------------- *)

type check_row = {
  ck_workload : string;
  ck_causal_fe : float;
  ck_causal_bp : float;
  ck_sweep_fe : float;
  ck_sweep_bp : float;
  ck_order_ok : bool;
}

let check_against_sweep ?(progress = false) ?compile ~jobs (r : report) =
  let module Sw = Epic_sweep.Sweep in
  let variant n =
    match Sw.find_variant n with
    | Some v -> v
    | None -> invalid_arg ("Causal.check_against_sweep: no sweep variant " ^ n)
  in
  let sweep =
    Sw.run
      ~variants:[ variant "perfect-icache"; variant "perfect-predictor" ]
      ?compile ~progress ~jobs ~workloads:r.r_workloads ()
  in
  List.map
    (fun wr ->
      let causal_delta cat =
        match curve_of wr (Target_category cat) with
        | Some k -> k.k_delta_full
        | None ->
            invalid_arg
              (Fmt.str
                 "Causal.check_against_sweep: %s has no %s target (run with \
                  --targets including it)"
                 wr.c_workload
                 (Acc.name cat))
      in
      let sweep_saving vname =
        let cell =
          List.find
            (fun (c : Sw.cell) ->
              c.Sw.c_workload = wr.c_workload && c.Sw.c_variant = vname)
            sweep.Sw.r_cells
        in
        (Sw.baseline_of sweep wr.c_workload).Sw.c_cycles -. cell.Sw.c_cycles
      in
      let cf = causal_delta Acc.Front_end
      and cb = causal_delta Acc.Br_mispredict
      and sf = sweep_saving "perfect-icache"
      and sb = sweep_saving "perfect-predictor" in
      {
        ck_workload = wr.c_workload;
        ck_causal_fe = cf;
        ck_causal_bp = cb;
        ck_sweep_fe = sf;
        ck_sweep_bp = sb;
        ck_order_ok = compare cf cb = compare sf sb;
      })
    r.r_reports

(* --- Factor-1.0 local exactness ------------------------------------------ *)

type local_row = {
  lk_workload : string;
  lk_target : target;
  lk_causal : float;
  lk_local : float;
  lk_ok : bool;
}

let local_tolerance a b =
  abs_float (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (abs_float a) (abs_float b))

(* The factor-1.0 invariant, target-kind-agnostic: scaling a target's
   charges to zero removes exactly the cycles the baseline charged to it
   (accounting is observation-only, so nothing else can move).  This is
   the same identity the perfect-* sweep cross-check rests on, extended to
   function and (function, category) targets, which have no sweep variant
   to diff against — the baseline's own bins are the independent side. *)
let check_local_exactness (r : report) =
  List.concat_map
    (fun wr ->
      List.filter_map
        (fun k ->
          match List.find_opt (fun p -> p.p_factor = 1.0) k.k_points with
          | None -> None
          | Some p ->
              let causal = wr.c_base_cycles -. p.p_cycles in
              Some
                {
                  lk_workload = wr.c_workload;
                  lk_target = k.k_target;
                  lk_causal = causal;
                  lk_local = k.k_local_cycles;
                  lk_ok = local_tolerance causal k.k_local_cycles;
                })
        wr.c_curves)
    r.r_reports

(* --- JSON export --------------------------------------------------------- *)

let target_to_json t =
  Json.Obj
    [
      ("name", Json.Str (target_name t));
      ( "kind",
        Json.Str
          (match t with
          | Target_func _ -> "func"
          | Target_category _ -> "category"
          | Target_func_category _ -> "func-category") );
    ]

let categories_to_json (a : float array) =
  Json.Obj
    (List.map
       (fun c -> (Acc.name c, Json.Float a.(Acc.index c)))
       Acc.all_categories)

let curve_to_json (k : curve) =
  Json.Obj
    [
      ("target", target_to_json k.k_target);
      ("local_cycles", Json.Float k.k_local_cycles);
      ("local_share", Json.Float k.k_local_share);
      ("slope", Json.Float k.k_slope);
      ("linearity", Json.Float k.k_linearity);
      ("delta_full", Json.Float k.k_delta_full);
      ( "points",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("factor", Json.Float p.p_factor);
                   ("cycles", Json.Float p.p_cycles);
                   ("program_speedup", Json.Float p.p_speedup);
                   ("output_matches", Json.Bool p.p_output_ok);
                 ])
             k.k_points) );
    ]

let fusion_to_json = function
  | None -> Json.Obj [ ("mode", Json.Str "serial") ]
  | Some fz ->
      Json.Obj
        [
          ("mode", Json.Str "fused");
          ("cells", Json.Int fz.fz_cells);
          ("sims", Json.Int fz.fz_sims);
          ( "cells_per_sim",
            Json.Float
              (if fz.fz_sims = 0 then 0.
               else float_of_int fz.fz_cells /. float_of_int fz.fz_sims) );
          ("sims_saved", Json.Int (fz.fz_cells - fz.fz_sims));
          ("resumed_prefixes", Json.Int fz.fz_resumed);
        ]

let to_json (r : report) =
  Json.Obj
    [
      ("causal", Json.Str "virtual-speedup");
      ("sample_period", Json.Int Experiments.sample_period);
      ("fusion", fusion_to_json r.r_fusion);
      ("workloads", Json.List (List.map (fun w -> Json.Str w) r.r_workloads));
      ("factors", Json.List (List.map (fun f -> Json.Float f) r.r_factors));
      ( "workload_reports",
        Json.List
          (List.map
             (fun wr ->
               Json.Obj
                 [
                   ("workload", Json.Str wr.c_workload);
                   ("base_cycles", Json.Float wr.c_base_cycles);
                   ("output_matches", Json.Bool wr.c_output_ok);
                   ("categories", categories_to_json wr.c_base_categories);
                   ("obs", wr.c_obs);
                   ("curves", Json.List (List.map curve_to_json wr.c_curves));
                 ])
             r.r_reports) );
      ( "aggregate",
        Json.List
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("target", target_to_json g.g_target);
                   ("workloads", Json.Int g.g_workloads);
                   ("mean_slope", Json.Float g.g_mean_slope);
                   ("rank_best", Json.Int g.g_rank_best);
                   ("rank_worst", Json.Int g.g_rank_worst);
                 ])
             r.r_aggregate) );
      ("total_wall_s", Json.Float r.r_wall_s);
    ]

(* --- Text report --------------------------------------------------------- *)

(* Tornado bars scaled to the workload's best slope; local share printed
   beside the slope so the COZ argument is visible wherever the two
   columns disagree (big share, flat slope — or the reverse). *)
let print_report ppf (r : report) =
  Fmt.pf ppf "Causal profile (virtual speedups) vs itanium2 x ILP-CS@.";
  Fmt.pf ppf "factors:%a@."
    (fun ppf -> List.iter (fun f -> Fmt.pf ppf " %g" f))
    r.r_factors;
  (match r.r_fusion with
  | None -> Fmt.pf ppf "mode: serial (one simulation per cell)@."
  | Some fz ->
      Fmt.pf ppf
        "mode: fused — %d cells from %d simulations (%.1f cells/sim, %d \
         sims saved%s)@."
        fz.fz_cells fz.fz_sims
        (if fz.fz_sims = 0 then 0.
         else float_of_int fz.fz_cells /. float_of_int fz.fz_sims)
        (fz.fz_cells - fz.fz_sims)
        (if fz.fz_resumed > 0 then
           Fmt.str ", %d prefix resumes" fz.fz_resumed
         else ""));
  List.iter
    (fun wr ->
      Fmt.pf ppf "@.%s  (baseline %.0f cycles%s)@." wr.c_workload
        wr.c_base_cycles
        (if wr.c_output_ok then "" else ", OUTPUT MISMATCH");
      Fmt.pf ppf "  %4s  %-20s %7s %7s %9s %12s@." "rank" "target" "local%"
        "slope" "linearity" "dcycles@1.0";
      let max_slope =
        List.fold_left (fun m k -> Float.max m k.k_slope) 1e-12 wr.c_curves
      in
      List.iteri
        (fun i k ->
          let bar =
            let n =
              int_of_float (Float.round (20. *. Float.max 0. k.k_slope /. max_slope))
            in
            String.make n '#'
          in
          Fmt.pf ppf "  %4d  %-20s %6.1f%% %7.4f %9.4f %12.0f  %s@." (i + 1)
            (target_name k.k_target)
            (100. *. k.k_local_share)
            k.k_slope k.k_linearity k.k_delta_full bar)
        wr.c_curves)
    r.r_reports;
  Fmt.pf ppf "@.Across %d workloads (mean causal slope, rank range):@."
    (List.length r.r_workloads);
  List.iter
    (fun g ->
      Fmt.pf ppf "  %-20s %7.4f  rank %d-%d  (%d workloads)@."
        (target_name g.g_target) g.g_mean_slope g.g_rank_best g.g_rank_worst
        g.g_workloads)
    r.r_aggregate
