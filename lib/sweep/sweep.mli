(** Machine-sensitivity sweeps: a declarative experiment matrix of named
    machine-description variants (one knob of {!Epic_mach.Machine_desc}
    turned at a time) crossed with compiler ablations (one
    {!Epic_core.Config} knob), executed over the {!Epic_core.Pool} domain
    runner, producing per-cell
    stall-category deltas against the [itanium2 x ILP-CS] baseline and a
    geomean tornado ordering.

    Each variant isolates one machine assumption behind a paper finding:
    [perfect-icache] and [perfect-predictor] suppress only the accounting
    charge of their category (the clock and all cache/predictor state still
    evolve exactly as in the baseline), so their deltas are confined to
    exactly the targeted category and the total can never exceed the
    baseline.  The geometry variants ([half-l2], [tiny-dtlb],
    [no-rse-backing], [2x-mem-latency]) change the simulated machine and
    recompile under it, so their effects may spread across categories. *)

type expect = [ `Faster | `Slower | `Either ]

(** A named machine variant. *)
type variant = {
  v_name : string;
  v_desc : Epic_mach.Machine_desc.t;
  v_isolates : string;
      (** one line: which paper finding this variant isolates *)
  v_targets : Epic_sim.Accounting.category list;
      (** the stall categories this variant is aimed at; for the perfect-*
          variants the deltas are provably confined to these *)
  v_expect : expect;
      (** sign of the expected total-cycle effect vs the baseline *)
}

(** A named compiler ablation: a tweak applied to the workload's ILP-CS
    configuration. *)
type ablation = {
  a_name : string;
  a_isolates : string;
      (** one line: which paper finding this ablation isolates *)
  a_tweak : Epic_core.Config.t -> Epic_core.Config.t;
}

(** The built-in machine variants, in canonical order: [perfect-icache],
    [perfect-predictor], [half-l2], [no-rse-backing], [2x-mem-latency],
    [tiny-dtlb]. *)
val variants : variant list

(** The built-in compiler ablations, mirroring
    {!Epic_core.Experiments.ablations}:
    the identity baseline [ILP-CS] first, then [no-hyperblock], [no-peel],
    [no-unroll], [no-tail-dup], [no-inline], [no-height-red]. *)
val ablations : ablation list

(** [itanium2], targets nothing. *)
val baseline_variant : variant

(** [ILP-CS], the identity tweak. *)
val baseline_ablation : ablation

val find_variant : string -> variant option
val find_ablation : string -> ablation option

(** One executed matrix cell. *)
type cell = {
  c_workload : string;
  c_variant : string;
  c_ablation : string;
  c_cycles : float;  (** total accounted cycles *)
  c_categories : float array;  (** the nine accounting categories *)
  c_output_ok : bool;
      (** simulated output still matches the reference interpreter *)
  c_fused : bool;
      (** this cell rode its workload's baseline simulation as a fused
          charge-suppression experiment (DESIGN.md §14) instead of paying
          for its own; cycles/categories are bit-identical either way *)
  c_obs : Epic_obs.Json.t;
      (** the shared observability block ({!Epic_core.Export.obs_to_json}):
          exact trace event counts and the PC-sampling profile of this
          cell's run.  Observation-only — attaching the instruments changes
          no counter or cycle. *)
}

type row = {
  t_variant : string;
  t_ablation : string;
  t_geomean_ratio : float;  (** geomean over workloads of cycles/baseline *)
}

type report = {
  r_workloads : string list;
  r_variants : variant list;
  r_ablations : ablation list;
  r_baseline : cell list;  (** one baseline cell per workload, suite order *)
  r_cells : cell list;  (** non-baseline cells, workload-major order *)
  r_tornado : row list;  (** (variant, ablation) combos by descending effect *)
  r_fused_cells : int;
      (** cells delivered by fused experiments = detailed simulations saved *)
  r_wall_s : float;
}

(** Execute the matrix: per-workload reference outputs are computed once
    (phase 1) and shared read-only, then every cell — the per-workload
    baseline plus [workloads x variants x ablations] — compiles and
    simulates independently on the {!Epic_core.Pool} (phase 2).  Results
    are in
    deterministic workload-major order regardless of [jobs].

    [compile] substitutes the compile entry point of every cell (default
    {!Epic_core.Driver.default_compile}) — the hook [Epic_serve.Session]
    supplies so sweeps share the session's content-addressed artifact
    cache.

    [sampling] runs every cell under interval sampling
    ({!Epic_core.Driver.run} [?sampling]): cell cycles and categories
    become extrapolated estimates, which trades a bounded accuracy budget
    (EXPERIMENTS.md) for simulation speed on wide matrices.

    By default ([fuse]) the pure charge-suppression variants
    ([perfect-icache], [perfect-predictor]) paired with the baseline
    ablation are {e fused} onto the workload's baseline simulation as
    factor-1.0 category experiments ({!Epic_sim.Accounting.experiment}):
    one detailed run delivers the baseline cell plus those variant cells,
    bit-identical to their serial runs (suppressing a charge and scaling
    it by [1 - 1.0] are the same float operation, and the machine's
    evolution never reads the accounting).  [fuse:false] keeps the
    one-simulation-per-cell path.  [big_inputs] substitutes each
    workload's scaled evaluation input
    ({!Epic_workloads.Workload.scale}).

    @raise Invalid_argument on an unknown workload name or [jobs < 1]. *)
val run :
  ?variants:variant list ->
  ?ablations:ablation list ->
  ?compile:Epic_core.Driver.compile_fn ->
  ?sampling:Epic_sim.Sampling.plan ->
  ?fuse:bool ->
  ?big_inputs:bool ->
  ?progress:bool ->
  jobs:int ->
  workloads:string list ->
  unit ->
  report

(** The baseline cell for a workload.  @raise Not_found if absent. *)
val baseline_of : report -> string -> cell

(** Per-category deltas of a cell vs its workload's baseline
    (cell - baseline, length 9). *)
val deltas : report -> cell -> float array

(** Cells whose simulated output diverged from the reference. *)
val mismatches : report -> cell list

val desc_to_json : Epic_mach.Machine_desc.t -> Epic_obs.Json.t

(** The sensitivity document.  Schema (stable; additions only):
    [sweep], [baseline] (variant/ablation names), [workloads], [variants]
    (name, isolates, targets, expect, desc), [ablations] (name, isolates),
    [cells]
    (workload, variant, ablation, cycles, cycle_ratio, categories, deltas,
    output_matches, fused, obs), [tornado], [fusion] (fused_cells,
    sims_saved) and [total_wall_s].  Pass the result
    through {!Epic_core.Export.normalize_time} before diffing. *)
val to_json : report -> Epic_obs.Json.t

(** Human-readable sensitivity report: per-workload variant tables with
    cycle ratios and the dominant delta categories, then the tornado. *)
val print_report : Format.formatter -> report -> unit
