(* Machine-sensitivity sweeps: a declarative matrix of machine-description
   variants x compiler ablations, run on the domain pool.  See sweep.mli for
   the contract; DESIGN.md "Machine descriptions & sweeps" for the design
   discussion (why the perfect-* variants suppress only the accounting
   charge, and why geometry variants recompile under their description). *)

open Epic_core
open Epic_workloads
module Md = Epic_mach.Machine_desc
module Acc = Epic_sim.Accounting
module Json = Epic_obs.Json

type expect = [ `Faster | `Slower | `Either ]

type variant = {
  v_name : string;
  v_desc : Md.t;
  v_isolates : string;
  v_targets : Acc.category list;
  v_expect : expect;
}

type ablation = {
  a_name : string;
  a_isolates : string;
  a_tweak : Config.t -> Config.t;
}

let i2 = Md.itanium2

let baseline_variant =
  {
    v_name = "itanium2";
    v_desc = i2;
    v_isolates = "the machine the paper measured";
    v_targets = [];
    v_expect = `Either;
  }

(* One knob per variant.  The perfect-* pair are idealizations, not
   geometry changes: the cache/predictor state and the clock evolve exactly
   as in the baseline, only the charge to their category is suppressed —
   so the delta is confined to exactly that category, and the total is the
   baseline minus it (never slower, by construction).  The geometry
   variants change the simulated machine for real and recompile under it. *)
let variants =
  [
    {
      v_name = "perfect-icache";
      v_desc = { i2 with Md.name = "perfect-icache"; Md.perfect_icache = true };
      v_isolates = "front-end stall share of ILP code growth (Fig. 5/9)";
      v_targets = [ Acc.Front_end ];
      v_expect = `Faster;
    };
    {
      v_name = "perfect-predictor";
      v_desc =
        { i2 with Md.name = "perfect-predictor"; Md.perfect_predictor = true };
      v_isolates = "mispredict flushes region formation removes (Fig. 7)";
      v_targets = [ Acc.Br_mispredict ];
      v_expect = `Faster;
    };
    {
      v_name = "half-l2";
      v_desc =
        {
          i2 with
          Md.name = "half-l2";
          Md.l2 = { i2.Md.l2 with Md.size = i2.Md.l2.Md.size / 2 };
        };
      v_isolates = "cache-resident scaling of the mini workloads (Sec. 3.1)";
      v_targets = [ Acc.Int_load_bubble; Acc.Float_scoreboard; Acc.Front_end ];
      v_expect = `Slower;
    };
    {
      v_name = "no-rse-backing";
      v_desc = { i2 with Md.name = "no-rse-backing"; Md.rse_physical = 16 };
      v_isolates = "register stack engine cost of deep call chains (Fig. 5)";
      v_targets = [ Acc.Rse ];
      v_expect = `Slower;
    };
    {
      v_name = "2x-mem-latency";
      v_desc = { i2 with Md.name = "2x-mem-latency"; Md.mem_latency = 2 * i2.Md.mem_latency };
      v_isolates = "memory-bound limit where ILP gains vanish (mcf, Sec. 4.2)";
      v_targets = [ Acc.Int_load_bubble; Acc.Float_scoreboard; Acc.Front_end ];
      v_expect = `Slower;
    };
    {
      v_name = "tiny-dtlb";
      v_desc = { i2 with Md.name = "tiny-dtlb"; Md.dtlb_entries = 4 };
      v_isolates = "DTLB walk share of the micropipeline stalls (Sec. 4.4)";
      v_targets = [ Acc.Micropipe ];
      v_expect = `Slower;
    };
  ]

let baseline_ablation =
  {
    a_name = "ILP-CS";
    a_isolates = "the full ILP + control-speculation configuration (baseline)";
    a_tweak = Fun.id;
  }

(* Mirrors Experiments.ablations, under sweep-friendly (flag-safe) names. *)
let ablations =
  baseline_ablation
  :: List.map
       (fun (a_name, a_isolates, a_tweak) -> { a_name; a_isolates; a_tweak })
       [
       ( "no-hyperblock",
         "if-conversion's share of the region-formation gains (Fig. 7)",
         fun c -> { c with Config.enable_hyperblock = false } );
       ( "no-peel",
         "loop peeling's contribution to straightened control flow",
         fun c -> { c with Config.enable_peel = false } );
       ( "no-unroll",
         "unrolling's ILP exposure vs its code-growth cost (Sec. 3.2)",
         fun c -> { c with Config.enable_unroll = false } );
       ( "no-tail-dup",
         "superblock tail duplication's share of code growth (Fig. 5)",
         fun c ->
           {
             c with
             Config.superblock =
               {
                 c.Config.superblock with
                 Epic_ilp.Superblock.growth_budget = 0.0;
               };
           } );
       ( "no-inline",
         "cross-function ILP from inlining vs its I-cache pressure",
         fun c -> { c with Config.inline_budget = 1.0 } );
       ( "no-height-red",
         "dependence-height reduction on critical recurrence paths",
         fun c -> { c with Config.enable_height_reduction = false } );
     ]

let find_variant name =
  List.find_opt (fun v -> v.v_name = name) (baseline_variant :: variants)

let find_ablation name = List.find_opt (fun a -> a.a_name = name) ablations

(* A variant is a pure charge suppression when its description is the
   baseline modulo exactly one perfect-* flag: the compile ignores the
   flag (nothing outside the simulator's charge site reads it), the
   machine evolution matches the baseline's, and suppressing a category's
   charges equals a factor-1.0 virtual-speedup experiment on it
   (bit-identical totals: [c *. 0.0 = +0.0] and [x +. 0.0 = x]).  Such a
   cell can ride the baseline simulation as a fused experiment instead of
   being simulated on its own (DESIGN.md §14). *)
let suppression_target (v : variant) =
  let d = v.v_desc in
  let normalized =
    { d with Md.perfect_icache = false; Md.perfect_predictor = false }
  in
  if not (String.equal (Md.digest normalized) (Md.digest i2)) then None
  else
    match (d.Md.perfect_icache, d.Md.perfect_predictor) with
    | true, false -> Some Acc.Front_end
    | false, true -> Some Acc.Br_mispredict
    | _ -> None

type cell = {
  c_workload : string;
  c_variant : string;
  c_ablation : string;
  c_cycles : float;
  c_categories : float array;
  c_output_ok : bool;
  c_fused : bool;
      (* delivered by a fused experiment on the baseline simulation
         instead of a simulation of its own *)
  c_obs : Json.t;
}

type row = {
  t_variant : string;
  t_ablation : string;
  t_geomean_ratio : float;
}

type report = {
  r_workloads : string list;
  r_variants : variant list;
  r_ablations : ablation list;
  r_baseline : cell list;
  r_cells : cell list;
  r_tornado : row list;
  r_fused_cells : int; (* cells that rode a baseline sim = sims saved *)
  r_wall_s : float;
}

(* Compile-and-simulate one cell.  The variant's description governs both
   the planned schedule (Driver.compile runs inside Itanium.with_desc) and
   the simulated machine; the ablation tweaks the ILP-CS configuration.
   Every cell runs with the trace and PC-sampling instruments attached —
   both are observation-only (no counter or cycle changes), and their
   summaries land in [c_obs] so sensitivity and causal reports share one
   observability block (Export.obs_to_json). *)
let run_cell ?sampling ~(compile : Driver.compile_fn) ~reference
    (w : Workload.t) (v : variant) (a : ablation) =
  let config = a.a_tweak (Experiments.config_for w Config.ILP_CS) in
  let compiled =
    compile ~config ~desc:(Some v.v_desc) ~train:w.Workload.train
      w.Workload.source
  in
  let trace = Epic_obs.Trace.create () in
  let profile =
    Epic_obs.Profile.create ~period:Experiments.sample_period ()
  in
  let code, out, st =
    Driver.run ~trace ~profile ?sampling compiled w.Workload.reference
  in
  let ref_code, ref_out = reference in
  {
    c_workload = w.Workload.short;
    c_variant = v.v_name;
    c_ablation = a.a_name;
    c_cycles = Acc.total st.Epic_sim.Machine.acc;
    c_categories = Array.copy st.Epic_sim.Machine.acc.Acc.totals;
    c_output_ok = code = ref_code && out = ref_out;
    c_obs = Export.obs_to_json ~trace ~profile ();
    c_fused = false;
  }

(* The workload's baseline cell, carrying the charge-suppression variants
   as fused factor-1.0 experiments: one simulation delivers the baseline
   cell plus one cell per [fused_pairs] entry, each bit-identical to the
   serial variant run (same totals, and — the machine evolution being
   accounting-independent — the same instruments, output and reference
   verdict, so [c_obs]/[c_output_ok] are shared). *)
let run_base_cell ?sampling ~(compile : Driver.compile_fn) ~reference
    (w : Workload.t) (fused_pairs : (variant * Acc.category) list) =
  let config = Experiments.config_for w Config.ILP_CS in
  let compiled =
    compile ~config ~desc:(Some baseline_variant.v_desc) ~train:w.Workload.train
      w.Workload.source
  in
  let trace = Epic_obs.Trace.create () in
  let profile =
    Epic_obs.Profile.create ~period:Experiments.sample_period ()
  in
  let experiments =
    List.map
      (fun (_, c) -> { Acc.target = Acc.Target_category c; speedup = 1.0 })
      fused_pairs
  in
  let code, out, st =
    Driver.run ~trace ~profile ?sampling ~experiments compiled
      w.Workload.reference
  in
  let ref_code, ref_out = reference in
  let ok = code = ref_code && out = ref_out in
  let obs = Export.obs_to_json ~trace ~profile () in
  let base =
    {
      c_workload = w.Workload.short;
      c_variant = baseline_variant.v_name;
      c_ablation = baseline_ablation.a_name;
      c_cycles = Acc.total st.Epic_sim.Machine.acc;
      c_categories = Array.copy st.Epic_sim.Machine.acc.Acc.totals;
      c_output_ok = ok;
      c_obs = obs;
      c_fused = false;
    }
  in
  let xacc = Epic_sim.Machine.fused_accounts st in
  let fused_cells =
    List.mapi
      (fun i ((v : variant), _) ->
        {
          c_workload = w.Workload.short;
          c_variant = v.v_name;
          c_ablation = baseline_ablation.a_name;
          c_cycles = Acc.total xacc.(i);
          c_categories = Array.copy xacc.(i).Acc.totals;
          c_output_ok = ok;
          c_obs = obs;
          c_fused = true;
        })
      fused_pairs
  in
  (base, fused_cells)

let geomean = function
  | [] -> invalid_arg "Sweep.geomean: empty"
  | l ->
      let n = List.length l in
      exp (List.fold_left (fun s x -> s +. log x) 0. l /. float_of_int n)

let run ?(variants = variants) ?(ablations = [ baseline_ablation ])
    ?(compile = Driver.default_compile) ?sampling ?(fuse = true)
    ?(big_inputs = false) ?(progress = false) ~jobs ~workloads () =
  let t0 = Sys.time () in
  let ws = Array.of_list (List.map Suite.find_exn workloads) in
  let ws = if big_inputs then Array.map Workload.scale ws else ws in
  (* Phase 1: one reference interpretation per workload, shared read-only
     by every cell of that workload's row. *)
  let references =
    Pool.map ~jobs (fun w -> Experiments.reference_output w) ws
  in
  (* Phase 2: the per-workload baseline cell plus the full matrix, in
     deterministic workload-major order (Pool.map returns index order).
     Charge-suppression variants paired with the baseline ablation fuse
     into the workload's baseline simulation ([run_base_cell]); every
     other cell is simulated on its own. *)
  let non_baseline (v : variant) (a : ablation) =
    not (v.v_name = baseline_variant.v_name && a.a_name = baseline_ablation.a_name)
  in
  let specs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun wi _ ->
              (wi, baseline_variant, baseline_ablation)
              :: List.concat_map
                   (fun v ->
                     List.filter_map
                       (fun a ->
                         if non_baseline v a then Some (wi, v, a) else None)
                       ablations)
                   variants)
            (Array.to_list ws)))
  in
  let fused_pairs =
    if not fuse then []
    else
      List.filter_map
        (fun v ->
          match suppression_target v with
          | Some c when v.v_name <> baseline_variant.v_name -> Some (v, c)
          | _ -> None)
        variants
  in
  let is_base (_, (v : variant), (a : ablation)) =
    v.v_name = baseline_variant.v_name && a.a_name = baseline_ablation.a_name
  in
  let is_fused_spec (_, (v : variant), (a : ablation)) =
    a.a_name = baseline_ablation.a_name
    && List.exists (fun ((fv : variant), _) -> fv.v_name = v.v_name)
         fused_pairs
  in
  let base_results =
    Pool.map ~jobs
      (fun wi ->
        let w = ws.(wi) in
        if progress then
          Fmt.epr "  sweeping %s / %s / %s (+%d fused)...@." w.Workload.short
            baseline_variant.v_name baseline_ablation.a_name
            (List.length fused_pairs);
        run_base_cell ?sampling ~compile ~reference:references.(wi) w
          fused_pairs)
      (Array.init (Array.length ws) (fun i -> i))
  in
  let serial_specs =
    Array.of_list
      (List.filter
         (fun s -> not (is_base s) && not (is_fused_spec s))
         (Array.to_list specs))
  in
  let serial_cells =
    Pool.map ~jobs
      (fun (wi, v, a) ->
        let w = ws.(wi) in
        if progress then
          Fmt.epr "  sweeping %s / %s / %s...@." w.Workload.short v.v_name
            a.a_name;
        run_cell ?sampling ~compile ~reference:references.(wi) w v a)
      serial_specs
  in
  (* reassemble in the original specs order ([serial_specs] preserves the
     relative order of the serial cells, so a sequential pop matches) *)
  let serial_q = ref (Array.to_list serial_cells) in
  let all =
    List.map
      (fun ((wi, (v : variant), _) as s) ->
        if is_base s then fst base_results.(wi)
        else if is_fused_spec s then
          List.find
            (fun c -> c.c_variant = v.v_name)
            (snd base_results.(wi))
        else
          match !serial_q with
          | c :: tl ->
              serial_q := tl;
              c
          | [] -> assert false)
      (Array.to_list specs)
  in
  let is_baseline c =
    c.c_variant = baseline_variant.v_name
    && c.c_ablation = baseline_ablation.a_name
  in
  let baseline = List.filter is_baseline all in
  let rest = List.filter (fun c -> not (is_baseline c)) all in
  let base_of w =
    List.find (fun c -> c.c_workload = w) baseline
  in
  (* Tornado: geomean over workloads of the cycle ratio of each
     (variant, ablation) combo, by descending distance from 1. *)
  let combos =
    List.sort_uniq compare
      (List.map (fun c -> (c.c_variant, c.c_ablation)) rest)
  in
  let tornado =
    List.map
      (fun (v, a) ->
        let ratios =
          List.filter_map
            (fun c ->
              if c.c_variant = v && c.c_ablation = a then
                Some (c.c_cycles /. (base_of c.c_workload).c_cycles)
              else None)
            rest
        in
        { t_variant = v; t_ablation = a; t_geomean_ratio = geomean ratios })
      combos
    |> List.sort (fun a b ->
           compare
             (abs_float (log b.t_geomean_ratio))
             (abs_float (log a.t_geomean_ratio)))
  in
  {
    r_workloads = workloads;
    r_variants = variants;
    r_ablations = ablations;
    r_baseline = baseline;
    r_cells = rest;
    r_tornado = tornado;
    r_fused_cells = List.length (List.filter (fun c -> c.c_fused) all);
    r_wall_s = Sys.time () -. t0;
  }

let baseline_of (r : report) w =
  List.find (fun c -> c.c_workload = w) r.r_baseline

let deltas (r : report) (c : cell) =
  let b = baseline_of r c.c_workload in
  Array.init (Array.length c.c_categories) (fun i ->
      c.c_categories.(i) -. b.c_categories.(i))

let mismatches (r : report) =
  List.filter (fun c -> not c.c_output_ok) (r.r_baseline @ r.r_cells)

(* --- JSON export --------------------------------------------------------- *)

let geom_to_json (g : Md.cache_geom) =
  Json.Obj
    [
      ("size", Json.Int g.Md.size);
      ("line", Json.Int g.Md.line);
      ("assoc", Json.Int g.Md.assoc);
    ]

let desc_to_json (d : Md.t) =
  Json.Obj
    [
      ("name", Json.Str d.Md.name);
      ("bundles_per_cycle", Json.Int d.Md.bundles_per_cycle);
      ("issue_width", Json.Int d.Md.issue_width);
      ( "slots",
        Json.Obj
          [
            ("m", Json.Int d.Md.m_slots);
            ("i", Json.Int d.Md.i_slots);
            ("f", Json.Int d.Md.f_slots);
            ("b", Json.Int d.Md.b_slots);
            ("ld", Json.Int d.Md.ld_pipes);
            ("st", Json.Int d.Md.st_pipes);
          ] );
      ( "latencies",
        Json.Obj
          [
            ("alu", Json.Int d.Md.lat_alu);
            ("mul", Json.Int d.Md.lat_mul);
            ("div", Json.Int d.Md.lat_div);
            ("fp", Json.Int d.Md.lat_fp);
            ("fdiv", Json.Int d.Md.lat_fdiv);
            ("load", Json.Int d.Md.lat_load);
            ("float_load", Json.Int d.Md.float_load_latency);
            ("l2", Json.Int d.Md.l2_latency);
            ("l3", Json.Int d.Md.l3_latency);
            ("mem", Json.Int d.Md.mem_latency);
          ] );
      ("l1i", geom_to_json d.Md.l1i);
      ("l1d", geom_to_json d.Md.l1d);
      ("l2", geom_to_json d.Md.l2);
      ("l3", geom_to_json d.Md.l3);
      ("perfect_icache", Json.Bool d.Md.perfect_icache);
      ( "dtlb",
        Json.Obj
          [
            ("entries", Json.Int d.Md.dtlb_entries);
            ("vhpt_walk_cycles", Json.Int d.Md.vhpt_walk_cycles);
            ("wild_walk_cycles", Json.Int d.Md.wild_walk_cycles);
            ("nat_page_cycles", Json.Int d.Md.nat_page_cycles);
            ("page_fault_cycles", Json.Int d.Md.page_fault_cycles);
          ] );
      ( "predictor",
        Json.Obj
          [
            ("bits", Json.Int d.Md.bp_bits);
            ("history_bits", Json.Int d.Md.bp_history_bits);
            ("mispredict_penalty", Json.Int d.Md.branch_mispredict_penalty);
            ("perfect", Json.Bool d.Md.perfect_predictor);
          ] );
      ( "rse",
        Json.Obj
          [
            ("physical", Json.Int d.Md.rse_physical);
            ("spill_cost_per_reg", Json.Int d.Md.rse_spill_cost_per_reg);
          ] );
      ( "overheads",
        Json.Obj
          [
            ("call", Json.Int d.Md.call_overhead);
            ("return", Json.Int d.Md.return_overhead);
            ("chk_recovery", Json.Int d.Md.chk_recovery_penalty);
          ] );
    ]

let categories_to_json (a : float array) =
  Json.Obj
    (List.map
       (fun c -> (Acc.name c, Json.Float a.(Acc.index c)))
       Acc.all_categories)

let cell_to_json (r : report) (c : cell) =
  let b = baseline_of r c.c_workload in
  Json.Obj
    [
      ("workload", Json.Str c.c_workload);
      ("variant", Json.Str c.c_variant);
      ("ablation", Json.Str c.c_ablation);
      ("cycles", Json.Float c.c_cycles);
      ("cycle_ratio", Json.Float (c.c_cycles /. b.c_cycles));
      ("categories", categories_to_json c.c_categories);
      ("deltas", categories_to_json (deltas r c));
      ("output_matches", Json.Bool c.c_output_ok);
      ("fused", Json.Bool c.c_fused);
      ("obs", c.c_obs);
    ]

let expect_name = function
  | `Faster -> "faster"
  | `Slower -> "slower"
  | `Either -> "either"

let to_json (r : report) =
  Json.Obj
    [
      ("sweep", Json.Str "machine-sensitivity");
      ( "baseline",
        Json.Obj
          [
            ("variant", Json.Str baseline_variant.v_name);
            ("ablation", Json.Str baseline_ablation.a_name);
          ] );
      ("workloads", Json.List (List.map (fun w -> Json.Str w) r.r_workloads));
      ( "variants",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("name", Json.Str v.v_name);
                   ("isolates", Json.Str v.v_isolates);
                   ( "targets",
                     Json.List
                       (List.map (fun c -> Json.Str (Acc.name c)) v.v_targets)
                   );
                   ("expect", Json.Str (expect_name v.v_expect));
                   ("desc", desc_to_json v.v_desc);
                 ])
             r.r_variants) );
      ( "ablations",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("name", Json.Str a.a_name);
                   ("isolates", Json.Str a.a_isolates);
                 ])
             r.r_ablations) );
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               (* the baseline cells lead their workload group, then the
                  matrix cells in execution order *)
               cell_to_json r c)
             (List.concat_map
                (fun w ->
                  baseline_of r w
                  :: List.filter (fun c -> c.c_workload = w) r.r_cells)
                r.r_workloads)) );
      ( "tornado",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 [
                   ("variant", Json.Str t.t_variant);
                   ("ablation", Json.Str t.t_ablation);
                   ("geomean_cycle_ratio", Json.Float t.t_geomean_ratio);
                 ])
             r.r_tornado) );
      ( "fusion",
        Json.Obj
          [
            ("fused_cells", Json.Int r.r_fused_cells);
            (* each fused cell rode its workload's baseline simulation
               instead of paying for its own *)
            ("sims_saved", Json.Int r.r_fused_cells);
          ] );
      ("total_wall_s", Json.Float r.r_wall_s);
    ]

(* --- Text report --------------------------------------------------------- *)

let print_report ppf (r : report) =
  Fmt.pf ppf "Machine sensitivity vs %s x %s@." baseline_variant.v_name
    baseline_ablation.a_name;
  List.iter
    (fun w ->
      let b = baseline_of r w in
      Fmt.pf ppf "@.%s  (baseline %.0f cycles%s)@." w b.c_cycles
        (if b.c_output_ok then "" else ", OUTPUT MISMATCH");
      Fmt.pf ppf "  %-34s %10s %7s  %s@." "variant x ablation" "cycles"
        "ratio" "dominant deltas";
      List.iter
        (fun c ->
          if c.c_workload = w then begin
            let ds = deltas r c in
            let named =
              List.filter_map
                (fun cat ->
                  let d = ds.(Acc.index cat) in
                  if d <> 0. then Some (Acc.name cat, d) else None)
                Acc.all_categories
              |> List.sort (fun (_, a) (_, b) ->
                     compare (abs_float b) (abs_float a))
            in
            let top =
              match named with
              | [] -> "(none)"
              | l ->
                  String.concat ", "
                    (List.map
                       (fun (n, d) -> Fmt.str "%s %+.0f" n d)
                       (List.filteri (fun i _ -> i < 3) l))
            in
            Fmt.pf ppf "  %-34s %10.0f %7.3f  %s%s%s@."
              (c.c_variant ^ " x " ^ c.c_ablation)
              c.c_cycles
              (c.c_cycles /. b.c_cycles)
              top
              (if c.c_fused then "  [fused]" else "")
              (if c.c_output_ok then "" else "  OUTPUT MISMATCH")
          end)
        r.r_cells)
    r.r_workloads;
  Fmt.pf ppf "@.Tornado (geomean cycle ratio over %d workloads):@."
    (List.length r.r_workloads);
  List.iter
    (fun t ->
      Fmt.pf ppf "  %-34s %7.3f@."
        (t.t_variant ^ " x " ^ t.t_ablation)
        t.t_geomean_ratio)
    r.r_tornado
