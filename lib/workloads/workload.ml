(* A workload: a mini-C program standing in for one SPECint2000 benchmark,
   with distinct training and reference inputs (SPEC run rules) and the
   per-benchmark compiler quirks the paper reports (pointer analysis is
   disabled for eon and perlbmk). *)

type t = {
  name : string; (* SPEC-style name, e.g. "164.gzip" *)
  short : string; (* "gzip" *)
  description : string;
  source : string; (* mini-C text *)
  train : int64 array;
  reference : int64 array;
  big_reference : int64 array option;
      (* opt-in ~10x scaled evaluation input (--big-inputs); [None] = the
         workload has no scaled variant and [scale] is the identity *)
  pointer_analysis : bool;
}

let make ?(pointer_analysis = true) ?big_reference ~name ~short ~description
    ~source ~train ~reference () =
  {
    name;
    short;
    description;
    source;
    train;
    reference;
    big_reference;
    pointer_analysis;
  }

(* The scaled variant: only the evaluation input changes — source and
   train are untouched, so a scaled run shares the compile (and its cache
   key) with the default one and only the simulation grows. *)
let scale (w : t) =
  match w.big_reference with
  | None -> w
  | Some big -> { w with reference = big }
