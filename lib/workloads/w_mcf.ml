(* 181.mcf stand-in: network-simplex-style pricing over a scattered linked
   arc list — serial pointer chasing with poor locality.  Dominated by data
   cache misses that the compiler cannot plan for; the paper shows mcf flat
   across all optimization levels (speedup ~1.0) because runtime memory
   stalls swamp any planned-ILP gain. *)

let source =
  {|
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

// arc layout: [0]=cost, [1]=flow, [2]=next arc (pointer), [3]=head node id
int *build_arcs(int n, int stride) {
  int *first; int *a; int *nxt; int i; int k;
  first = malloc(32);
  a = first;
  for (i = 1; i < n; i = i + 1) {
    // scatter allocations to defeat locality
    for (k = 0; k < stride; k = k + 1) { nxt = malloc(32); }
    nxt = malloc(32);
    a[0] = rand_next() % 1000 - 500;
    a[1] = 0;
    a[2] = (int) nxt;
    a[3] = rand_next() % 512;
    a = nxt;
  }
  a[0] = 0; a[1] = 0; a[2] = 0; a[3] = 0;
  return first;
}

int potential[512];

// one pricing sweep: chase the arc list, update flows on negative reduced
// cost (biased branch), serial dependence through the pointer chain
int price_sweep(int *first) {
  int *a; int count; int red;
  a = first;
  count = 0;
  while ((int) a != 0) {
    red = a[0] + potential[a[3]];
    if (red < 0) {
      a[1] = a[1] + 1;
      potential[a[3]] = potential[a[3]] + 1;
      count = count + 1;
    }
    a = (int*) a[2];
  }
  return count;
}

int main() {
  int arcs; int sweeps; int stride; int i; int total; int *first;
  rng = input(0);
  arcs = input(1);
  sweeps = input(2);
  stride = input(3);
  for (i = 0; i < 512; i = i + 1) { potential[i] = rand_next() % 200 - 100; }
  first = build_arcs(arcs, stride);
  total = 0;
  for (i = 0; i < sweeps; i = i + 1) {
    total = total + price_sweep(first);
  }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"181.mcf" ~short:"mcf"
    ~description:"pointer-chasing network pricing: data-cache bound"
    ~source
    ~train:[| 11L; 900L; 18L; 3L |]
    ~reference:[| 23L; 1500L; 25L; 4L |]
      (* 10x the pricing sweeps (input 2): same network, ~10x the
         simulated pointer-chasing — the --big-inputs footprint *)
    ~big_reference:[| 23L; 1500L; 250L; 4L |]
    ()
