(* 164.gzip stand-in: LZ77-style compression with hash-chain match finding.
   Dominated by tight counted loops (match comparison), table lookups and
   biased branches — the kind of code where region formation and unrolling
   sustain high planned IPC (gzip has planned IPC > 3.0 in the paper). *)

let source =
  {|
int buffer[4096];
int hashhead[256];
int hashprev[4096];
int litcount[64];
int rng;

int rand_next() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int fill_buffer(int n, int spread) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    buffer[i] = rand_next() % spread;
  }
  return n;
}

int hash3(int pos) {
  int h;
  h = buffer[pos] * 31 + buffer[pos + 1] * 7 + buffer[pos + 2];
  return h & 255;
}

// length of the match between positions a and b, capped
int match_length(int a, int b, int maxlen) {
  int len;
  len = 0;
  while (len < maxlen && buffer[a + len] == buffer[b + len]) {
    len = len + 1;
  }
  return len;
}

int deflate(int n) {
  int pos; int out; int h; int cand; int best; int bestpos;
  int chain; int len;
  out = 0;
  for (pos = 0; pos < n - 8; pos = pos + 1) {
    h = hash3(pos);
    cand = hashhead[h];
    best = 0;
    bestpos = 0;
    chain = 0;
    while (cand > 0 && chain < 8) {
      len = match_length(cand, pos, 8);
      if (len > best) { best = len; bestpos = cand; }
      cand = hashprev[cand & 4095];
      chain = chain + 1;
    }
    hashprev[pos & 4095] = hashhead[h];
    hashhead[h] = pos;
    if (best >= 3) {
      // emit a match: skip ahead
      out = out + 2;
      pos = pos + best - 1;
      litcount[best & 63] = litcount[best & 63] + 1;
    } else {
      out = out + 1;
      litcount[buffer[pos] & 63] = litcount[buffer[pos] & 63] + 1;
    }
  }
  return out;
}

int main() {
  int rounds; int n; int spread; int r; int total; int i;
  rng = input(0);
  rounds = input(1);
  n = input(2);
  spread = input(3);
  total = 0;
  for (r = 0; r < rounds; r = r + 1) {
    fill_buffer(n, spread);
    total = total + deflate(n);
  }
  for (i = 0; i < 8; i = i + 1) { print_int(litcount[i]); }
  print_int(total);
  return 0;
}
|}

let t =
  Workload.make ~name:"164.gzip" ~short:"gzip"
    ~description:"LZ77 hash-chain compression: counted loops, high ILP"
    ~source
    ~train:[| 42L; 3L; 1400L; 7L |]
    ~reference:[| 1234L; 6L; 2000L; 6L |]
      (* 10x the compression rounds (input 1): same working set, ~10x the
         simulated groups — the --big-inputs footprint *)
    ~big_reference:[| 1234L; 60L; 2000L; 6L |]
    ()
