(** A workload: a mini-C program standing in for one SPECint2000 benchmark,
    with distinct training and reference inputs (SPEC run rules) and the
    per-benchmark compiler quirks the paper reports. *)

type t = {
  name : string;  (** SPEC-style name, e.g. ["164.gzip"] *)
  short : string;  (** e.g. ["gzip"] *)
  description : string;
  source : string;  (** mini-C text *)
  train : int64 array;  (** profiling input *)
  reference : int64 array;  (** evaluation input *)
  big_reference : int64 array option;
      (** opt-in ~10x scaled evaluation input ([--big-inputs]); [None] =
          no scaled variant, {!scale} is the identity *)
  pointer_analysis : bool;
      (** false for eon and perlbmk, as in the paper *)
}

val make :
  ?pointer_analysis:bool ->
  ?big_reference:int64 array ->
  name:string ->
  short:string ->
  description:string ->
  source:string ->
  train:int64 array ->
  reference:int64 array ->
  unit ->
  t

(** The workload with its scaled evaluation input substituted ([reference
    <- big_reference]); identity when the workload has none.  Source and
    train are untouched, so a scaled run shares the default compile (and
    compile cache key) and only the simulation grows. *)
val scale : t -> t
