(** Measured-vs-extrapolated accuracy harness for sampled simulation: run
    each workload in full and under interval sampling on the same compiled
    binary, compare the cycle accountings, and judge the result against the
    CI-enforced error budgets (DESIGN.md §13, EXPERIMENTS.md). *)

val total_budget : float
(** Geomean total-cycle relative-error budget (0.02). *)

val cat_budget : float
(** Per-category error budget, normalized by the full run's total (0.05). *)

type row = {
  r_workload : string;
  r_full_cycles : float;
  r_sampled_cycles : float;
  r_total_err : float;  (** |sampled - full| / full *)
  r_cat_err : float array;
      (** per category, |delta| / full total (length 9, {!Epic_sim.Accounting.index} order) *)
  r_max_cat_err : float;
  r_detail_fraction : float;  (** detailed groups / total groups *)
  r_full_wall_s : float;
  r_sampled_wall_s : float;
  r_speedup : float;  (** full wall / sampled wall *)
  r_output_ok : bool;  (** sampled exit code and output match the full run *)
  r_ci95_rel : float;  (** the sampled run's own CI95 bound / its estimate *)
}

type report = {
  plan : Epic_sim.Sampling.plan;
  rows : row list;
  geomean_err : float;  (** geomean of (1 + err) - 1 over workloads *)
  worst_cat_err : float;
  geomean_speedup : float;
  pass : bool;
      (** outputs all exact, geomean within {!total_budget}, every category
          within {!cat_budget} *)
}

(** Compile and measure [workloads] (default: the full 12-benchmark suite)
    under [plan] (default {!Epic_sim.Sampling.default_plan}).  [jobs] > 1
    fans the per-workload work over a domain pool — compilation dominates
    there, but wall-clock speedups are then cross-domain noisy; CI uses
    [jobs:1] for trustworthy timing. *)
val run :
  ?plan:Epic_sim.Sampling.plan ->
  ?jobs:int ->
  ?workloads:Epic_workloads.Workload.t list ->
  unit ->
  report

val to_json : report -> Epic_obs.Json.t
val print : Format.formatter -> report -> unit
