(* Measured-vs-extrapolated accuracy harness for sampled simulation
   (DESIGN.md §13): each workload is compiled once, run in full and under
   interval sampling, and the two accountings are compared — total-cycle
   relative error, per-category error (normalized by the *total*, so a
   tiny category cannot blow up a relative bound), and host-side speedup.
   The CI `sample-accuracy` job runs this over a subset and enforces the
   documented budgets; EXPERIMENTS.md tabulates the full suite. *)

module Workload = Epic_workloads.Workload
module Machine = Epic_sim.Machine
module Accounting = Epic_sim.Accounting
module Sampling = Epic_sim.Sampling
module Json = Epic_obs.Json

(* Error budgets enforced by CI (and documented in EXPERIMENTS.md). *)
let total_budget = 0.02
let cat_budget = 0.05

type row = {
  r_workload : string;
  r_full_cycles : float;
  r_sampled_cycles : float;
  r_total_err : float;  (* |sampled - full| / full *)
  r_cat_err : float array;  (* per category |delta| / full total, length 9 *)
  r_max_cat_err : float;
  r_detail_fraction : float;  (* detailed groups / total groups *)
  r_full_wall_s : float;
  r_sampled_wall_s : float;
  r_speedup : float;  (* full wall / sampled wall *)
  r_output_ok : bool;  (* sampled output and exit code match the full run *)
  r_ci95_rel : float;  (* sampled run's own CI95 bound / estimate *)
}

type report = {
  plan : Sampling.plan;
  rows : row list;
  geomean_err : float;  (* geomean of (1 + err) - 1 over workloads *)
  worst_cat_err : float;
  geomean_speedup : float;
  pass : bool;  (* geomean_err <= total_budget && worst_cat_err <= cat_budget *)
}

let geomean = function
  | [] -> 0.
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun a x -> a +. log (max x 1e-12)) 0. xs /. n)

(* One workload: compile once, run full then sampled on the same binary. *)
let measure_workload ~(plan : Sampling.plan) (w : Workload.t) =
  let config =
    {
      (Epic_core.Config.make Epic_core.Config.ILP_CS) with
      Epic_core.Config.pointer_analysis = w.Workload.pointer_analysis;
    }
  in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Workload.train w.Workload.source
  in
  let input = w.Workload.reference in
  let t0 = Unix.gettimeofday () in
  let fcode, fout, fst_ = Epic_core.Driver.run compiled input in
  let full_wall = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let scode, sout, sst = Epic_core.Driver.run ~sampling:plan compiled input in
  let sampled_wall = Unix.gettimeofday () -. t1 in
  let full_total = Accounting.total fst_.Machine.acc in
  let sampled_total = Accounting.total sst.Machine.acc in
  let cat_err = Array.make 9 0. in
  for k = 0 to 8 do
    cat_err.(k) <-
      abs_float (sst.Machine.acc.Accounting.totals.(k)
                -. fst_.Machine.acc.Accounting.totals.(k))
      /. max full_total 1.
  done;
  let detail_fraction, ci95_rel =
    match Machine.sample_summary sst with
    | Some su ->
        ( float_of_int su.Sampling.s_detail_groups
          /. float_of_int (max 1 su.Sampling.s_total_groups),
          su.Sampling.s_ci95 /. max su.Sampling.s_est_cycles 1. )
    | None -> (1.0, 0.)
  in
  {
    r_workload = w.Workload.short;
    r_full_cycles = full_total;
    r_sampled_cycles = sampled_total;
    r_total_err = abs_float (sampled_total -. full_total) /. max full_total 1.;
    r_cat_err = cat_err;
    r_max_cat_err = Array.fold_left max 0. cat_err;
    r_detail_fraction = detail_fraction;
    r_full_wall_s = full_wall;
    r_sampled_wall_s = sampled_wall;
    r_speedup = full_wall /. max sampled_wall 1e-9;
    r_output_ok = fcode = scode && String.equal fout sout;
    r_ci95_rel = ci95_rel;
  }

let run ?(plan = Sampling.default_plan) ?(jobs = 1)
    ?(workloads = Epic_workloads.Suite.all) () =
  let rows =
    if jobs <= 1 then List.map (measure_workload ~plan) workloads
    else
      Array.to_list
        (Epic_core.Pool.map ~jobs (measure_workload ~plan)
           (Array.of_list workloads))
  in
  let geomean_err = geomean (List.map (fun r -> 1. +. r.r_total_err) rows) -. 1. in
  let worst_cat_err = List.fold_left (fun a r -> max a r.r_max_cat_err) 0. rows in
  let outputs_ok = List.for_all (fun r -> r.r_output_ok) rows in
  {
    plan;
    rows;
    geomean_err;
    worst_cat_err;
    geomean_speedup = geomean (List.map (fun r -> r.r_speedup) rows);
    pass = outputs_ok && geomean_err <= total_budget && worst_cat_err <= cat_budget;
  }

let row_to_json (r : row) =
  Json.Obj
    [
      ("workload", Json.Str r.r_workload);
      ("full_cycles", Json.Float r.r_full_cycles);
      ("sampled_cycles", Json.Float r.r_sampled_cycles);
      ("total_err", Json.Float r.r_total_err);
      ( "cat_err",
        Json.Obj
          (List.map
             (fun c ->
               ( Accounting.name c,
                 Json.Float r.r_cat_err.(Accounting.index c) ))
             Accounting.all_categories) );
      ("max_cat_err", Json.Float r.r_max_cat_err);
      ("detail_fraction", Json.Float r.r_detail_fraction);
      ("full_wall_s", Json.Float r.r_full_wall_s);
      ("sampled_wall_s", Json.Float r.r_sampled_wall_s);
      ("speedup", Json.Float r.r_speedup);
      ("output_ok", Json.Bool r.r_output_ok);
      ("ci95_rel", Json.Float r.r_ci95_rel);
    ]

let to_json (rep : report) =
  Json.Obj
    [
      ("bench", Json.Str "sample-accuracy");
      ("plan", Json.Str (Sampling.key_fragment rep.plan));
      ("total_budget", Json.Float total_budget);
      ("cat_budget", Json.Float cat_budget);
      ("geomean_err", Json.Float rep.geomean_err);
      ("worst_cat_err", Json.Float rep.worst_cat_err);
      ("geomean_speedup", Json.Float rep.geomean_speedup);
      ("pass", Json.Bool rep.pass);
      ("rows", Json.List (List.map row_to_json rep.rows));
    ]

let print ppf (rep : report) =
  Fmt.pf ppf "sampled-simulation accuracy (plan %s)@."
    (Sampling.key_fragment rep.plan);
  Fmt.pf ppf "%-10s %14s %14s %8s %8s %8s %8s %6s@." "workload" "full cycles"
    "sampled" "err%" "maxcat%" "detail%" "speedup" "out";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %14.0f %14.0f %8.3f %8.3f %8.2f %8.2f %6s@."
        r.r_workload r.r_full_cycles r.r_sampled_cycles
        (100. *. r.r_total_err) (100. *. r.r_max_cat_err)
        (100. *. r.r_detail_fraction) r.r_speedup
        (if r.r_output_ok then "ok" else "FAIL"))
    rep.rows;
  Fmt.pf ppf
    "geomean err %.3f%% (budget %.1f%%), worst category err %.3f%% (budget \
     %.1f%%), geomean speedup %.2fx -> %s@."
    (100. *. rep.geomean_err) (100. *. total_budget)
    (100. *. rep.worst_cat_err) (100. *. cat_budget) rep.geomean_speedup
    (if rep.pass then "PASS" else "FAIL")
