(* Basic blocks — or, after structural transformation, superblocks and
   hyperblocks.  A block is a straight-line sequence of instructions that may
   contain internal side-exit branches (superblocks) and predicated
   instructions (hyperblocks).  Control that does not take any branch falls
   through to the next block in the function's layout order; layout order is
   therefore meaningful both for semantics and for instruction-cache
   behaviour. *)

type kind =
  | Plain
  | Super (* single-entry trace formed by superblock formation *)
  | Hyper (* if-converted predicated region *)
  | Recovery (* sentinel-speculation recovery code; laid out cold *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
  mutable weight : float; (* profiled entry count *)
  mutable kind : kind;
  mutable cold : bool; (* laid out in the cold section at the function end *)
}

let create ?(kind = Plain) label = { label; instrs = []; weight = 0.; kind; cold = false }

(* A snapshot deep copy: fresh instruction cells with the same ids
   ([Instr.clone]), so snapshotting never perturbs the global id counter. *)
let copy b =
  {
    label = b.label;
    instrs = List.map Instr.clone b.instrs;
    weight = b.weight;
    kind = b.kind;
    cold = b.cold;
  }

let append b i = b.instrs <- b.instrs @ [ i ]

let instr_count b = List.length b.instrs

(* The labels this block can branch to, in instruction order.  The
   fall-through successor is not included; see [Func.successors]. *)
let branch_targets b =
  List.filter_map Instr.branch_target b.instrs

(* True when control cannot fall through past the end of this block. *)
let ends_in_unconditional b =
  match List.rev b.instrs with
  | last :: _ -> (
      match last.Instr.op with
      | Opcode.Br_ret -> last.Instr.pred = None
      | Opcode.Br -> last.Instr.pred = None
      | _ -> false)
  | [] -> false

let kind_to_string = function
  | Plain -> "plain"
  | Super -> "superblock"
  | Hyper -> "hyperblock"
  | Recovery -> "recovery"

let pp ppf b =
  Fmt.pf ppf ".%s:  ; %s w=%.0f%s@." b.label (kind_to_string b.kind) b.weight
    (if b.cold then " cold" else "");
  List.iter (fun i -> Fmt.pf ppf "  %a@." Instr.pp i) b.instrs
