(** The reference interpreter: executes (virtual- or physical-register) IR
    directly, at any point of the pipeline, with the IA-64 semantics the
    structural transforms rely on — predication, compare types, NaT
    deferral for control-speculative loads, sentinel checks with in-place
    recovery, and an ALAT for data-speculative loads.

    It is the semantic oracle for differential testing and, through
    [hooks], the engine behind control-flow profiling. *)

type value = Vi of int64 | Vf of float | Vp of bool | Vnat

exception Fault of string  (** architectural fault: the program is wrong *)

exception Exit_program of int  (** raised by the [exit] intrinsic *)

exception Out_of_fuel  (** the dynamic instruction budget was exhausted *)

(** Instrumentation callbacks (all default to no-ops). *)
type hooks = {
  on_block : Func.t -> Block.t -> unit;  (** every block entry *)
  on_branch : Func.t -> Instr.t -> bool -> unit;
      (** every executed direct branch, with its taken outcome *)
  on_call : string -> unit;  (** every call, by callee name *)
  on_indirect : Instr.t -> string -> unit;
      (** every indirect call site with the resolved callee *)
}

val no_hooks : hooks

(** Interpreter state; exposed so callers can read the event counters. *)
type state = {
  program : Program.t;
  mem : Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  mutable fuel : int;
  mutable executed : int;  (** dynamic instructions executed *)
  mutable nat_faults : int;  (** NaT consumed by a non-speculative op *)
  mutable wild_loads : int;  (** speculative accesses to unmapped pages *)
  mutable alat_recoveries : int;  (** chk.a entries found invalidated *)
  hooks : hooks;
  vspans : (string, int * int * int) Hashtbl.t;
      (** internal host-speed cache: per-function virtual-register bank
          sizes (see DESIGN.md §10); not meaningful to callers *)
}

(** Run [program] with the given input vector (read by the [input]
    intrinsic); returns (exit code, printed output, final state).
    [fuel] bounds the dynamic instruction count (default 4·10⁸). *)
val run :
  ?hooks:hooks ->
  ?fuel:int ->
  Program.t ->
  int64 array ->
  int * string * state
