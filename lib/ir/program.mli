(** Whole programs: functions plus global data.  Globals live at fixed
    addresses assigned by {!assign_addresses}; the interpreter and the
    simulator share this layout. *)

type global = {
  gname : string;
  size : int;  (** bytes *)
  init : int64 array option;  (** initial 8-byte words; zero if absent *)
  mutable address : int64;
}

type t = {
  mutable funcs : Func.t list;  (** definition order *)
  mutable globals : global list;
  mutable entry : string;  (** entry function, normally "main" *)
}

val create : unit -> t

(** A snapshot deep copy: fresh functions, blocks, instructions and global
    descriptors (read-only initializer arrays stay shared).  Instruction
    ids are preserved, so taking a snapshot does not advance the global id
    counter. *)
val copy : t -> t
val add_func : t -> Func.t -> unit
val add_global : t -> ?init:int64 array -> string -> size:int -> global
val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t
val find_global : t -> string -> global option
val find_global_exn : t -> string -> global

(** {2 Address-space layout} (the zero page is the architected NaT page) *)

val data_base : int64
val heap_base : int64
val stack_top : int64
val code_base : int64

(** Stable "address" of a function, so function pointers can live in
    memory (indirect calls). *)
val func_address : t -> string -> int64

val func_at_address : t -> int64 -> string option

(** Assign addresses to all globals (16-byte aligned, from [data_base]). *)
val assign_addresses : t -> unit

val iter_instrs : t -> (Instr.t -> unit) -> unit
val instr_count : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
