(* A sparse, paged, byte-addressed memory image shared by the high-level IR
   interpreter and (as the backing store) by the machine simulator.  Pages
   must be explicitly mapped; accesses to unmapped pages are reported to the
   caller so that speculative "wild loads" (Section 4.3 of the paper) can be
   modelled rather than silently absorbed.

   Host-performance notes (DESIGN.md §10): accesses that fit inside one
   page — the overwhelming majority, since the simulated ABI aligns scalars
   — are performed as single word-granularity [Bytes] reads/writes instead
   of per-byte loops, and the page handle of the most recent access is
   cached so consecutive accesses to the same page (stack traffic, array
   walks) skip the page-table hash entirely.  Pages are never unmapped and
   their [Bytes] handles never move, so the one-entry handle cache can
   never go stale. *)

let page_bits = 9
let page_size = 1 lsl page_bits (* 512 B; scaled from 16 kB (see DESIGN.md) *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable mapped_count : int;
  mutable last_idx : int; (* page index of [last_page]; -1 = empty cache *)
  mutable last_page : Bytes.t;
}

type access = Ok | Unmapped | Null_page

let create () =
  {
    pages = Hashtbl.create 64;
    mapped_count = 0;
    last_idx = -1;
    last_page = Bytes.empty;
  }

let page_of_addr (a : int64) = Int64.to_int (Int64.shift_right_logical a 9)

let map_page t idx =
  if not (Hashtbl.mem t.pages idx) then begin
    Hashtbl.add t.pages idx (Bytes.make page_size '\000');
    t.mapped_count <- t.mapped_count + 1
  end

let map_range t (addr : int64) (bytes : int) =
  let first = page_of_addr addr in
  let last = page_of_addr (Int64.add addr (Int64.of_int (max 0 (bytes - 1)))) in
  for i = first to last do
    map_page t i
  done

let is_mapped t (a : int64) = Hashtbl.mem t.pages (page_of_addr a)

(* Classify an access without performing it.  The zero page is the
   architected NaT page: speculative accesses to it complete cheaply. *)
let classify t (a : int64) =
  if Int64.unsigned_compare a (Int64.of_int page_size) < 0 then Null_page
  else if is_mapped t a then Ok
  else Unmapped

(* The page backing [idx], mapping it on demand (the policy decision of
   whether an unmapped access is legal lives above this layer). *)
let page t idx =
  if idx = t.last_idx then t.last_page
  else
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
          map_page t idx;
          Hashtbl.find t.pages idx
    in
    t.last_idx <- idx;
    t.last_page <- p;
    p

let read_byte t (a : int64) =
  Char.code
    (Bytes.get (page t (page_of_addr a)) (Int64.to_int a land (page_size - 1)))

let write_byte t (a : int64) (v : int) =
  Bytes.set
    (page t (page_of_addr a))
    (Int64.to_int a land (page_size - 1))
    (Char.chr (v land 0xff))

(* Little-endian reads/writes of 1, 4 or 8 bytes.  The caller is responsible
   for having consulted [classify]; these map pages on demand so that the
   interpreter and simulator never crash on technically-unmapped accesses
   (the policy decision lives above this layer). *)

(* Slow path: assemble byte-by-byte (the access straddles a page edge). *)
let read_slow t (a : int64) (size : int) =
  let rec go i acc =
    if i >= size then acc
    else
      let b = read_byte t (Int64.add a (Int64.of_int i)) in
      go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  let raw = go 0 0L in
  match size with
  | 1 -> raw
  | 4 ->
      (* sign-extend 32-bit quantities *)
      Int64.shift_right (Int64.shift_left raw 32) 32
  | _ -> raw

let read t (a : int64) (size : int) =
  let off = Int64.to_int a land (page_size - 1) in
  if off + size <= page_size then
    let p = page t (page_of_addr a) in
    match size with
    | 8 -> Bytes.get_int64_le p off
    | 4 -> Int64.of_int32 (Bytes.get_int32_le p off) (* sign-extends *)
    | 1 -> Int64.of_int (Bytes.get_uint8 p off)
    | _ -> read_slow t a size
  else read_slow t a size

let write_slow t (a : int64) (size : int) (v : int64) =
  for i = 0 to size - 1 do
    write_byte t
      (Int64.add a (Int64.of_int i))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
  done

let write t (a : int64) (size : int) (v : int64) =
  let off = Int64.to_int a land (page_size - 1) in
  if off + size <= page_size then
    let p = page t (page_of_addr a) in
    match size with
    | 8 -> Bytes.set_int64_le p off v
    | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v) (* low 4 bytes *)
    | 1 -> Bytes.set_uint8 p off (Int64.to_int v land 0xff)
    | _ -> write_slow t a size v
  else write_slow t a size v

(* Deep copy for checkpointing: every page's bytes are duplicated and the
   one-entry handle cache reset (it would otherwise alias the source). *)
let copy t =
  let pages = Hashtbl.create (max 64 (Hashtbl.length t.pages)) in
  Hashtbl.iter (fun idx p -> Hashtbl.add pages idx (Bytes.copy p)) t.pages;
  {
    pages;
    mapped_count = t.mapped_count;
    last_idx = -1;
    last_page = Bytes.empty;
  }

(* Initialize the image from a program's global data and map the stack and
   the NaT page.  Returns unit; addresses must already be assigned. *)
let load_program t (p : Program.t) =
  map_page t 0;
  (* architected NaT page *)
  List.iter
    (fun (g : Program.global) ->
      map_range t g.Program.address g.Program.size;
      match g.Program.init with
      | None -> ()
      | Some words ->
          Array.iteri
            (fun i w -> write t (Int64.add g.Program.address (Int64.of_int (8 * i))) 8 w)
            words)
    p.Program.globals;
  (* Map an initial stack region below [stack_top]. *)
  let stack_bytes = 64 * 1024 in
  map_range t (Int64.sub Program.stack_top (Int64.of_int stack_bytes)) stack_bytes
