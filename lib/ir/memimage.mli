(** A sparse, paged, byte-addressed memory image shared by the reference
    interpreter and the machine simulator.  Pages must be mapped explicitly;
    the classification of unmapped accesses is what lets callers model
    speculative "wild loads" (paper Section 4.3). *)

val page_bits : int

val page_size : int
(** 512 bytes — scaled with the caches, see DESIGN.md. *)

type t

type access =
  | Ok  (** the page is mapped *)
  | Unmapped
  | Null_page  (** the architected NaT page at address 0 *)

val create : unit -> t
val page_of_addr : int64 -> int
val map_page : t -> int -> unit
val map_range : t -> int64 -> int -> unit
val is_mapped : t -> int64 -> bool

(** Classify an access without performing it. *)
val classify : t -> int64 -> access

(** Little-endian read of 1, 4 or 8 bytes (4-byte reads sign-extend).
    Maps pages on demand: consult {!classify} first for policy. *)
val read : t -> int64 -> int -> int64

val write : t -> int64 -> int -> int64 -> unit

(** Initialize the image from a program's globals and map the stack and the
    NaT page ([Program.assign_addresses] must have run). *)
val load_program : t -> Program.t -> unit

(** Deep copy (every page's bytes duplicated), for checkpointing. *)
val copy : t -> t
