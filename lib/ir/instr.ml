(* IR instructions.  Instructions are mutable records: the structural
   transformation passes of the compiler rewrite them in place, following the
   Lcode tradition.  Each instruction carries a unique id used for profile
   annotation, memory-dependence tags and performance-monitor attribution. *)

type attrs = {
  mutable mem_tag : int list option;
      (* sorted abstract-location ids this memory op may touch; [None] means
         unknown (conservatively aliases everything) *)
  mutable taken_prob : float; (* branches: profiled probability of taking *)
  mutable weight : float; (* profiled dynamic execution count *)
  mutable recovery : string option; (* Chk: label of the recovery block *)
  mutable check_reg : Reg.t option; (* sentinel load: register chk.s tests *)
  mutable frame_in : int; (* Alloc: incoming (param) stacked registers *)
  mutable frame_local : int; (* Alloc: local stacked registers *)
  mutable speculated : bool; (* hoisted or promoted above original guard *)
  mutable promoted : bool; (* speculated via predicate promotion *)
  mutable origin : int; (* id of the source instruction this was copied from *)
}

type t = {
  id : int;
  mutable op : Opcode.t;
  mutable dsts : Reg.t list;
  mutable srcs : Operand.t list;
  mutable pred : Reg.t option; (* guarding predicate; [None] = always *)
  mutable cycle : int; (* issue cycle within the block; -1 = unscheduled *)
  attrs : attrs;
}

let default_attrs () =
  {
    mem_tag = None;
    taken_prob = 0.5;
    weight = 0.;
    recovery = None;
    check_reg = None;
    frame_in = 0;
    frame_local = 0;
    speculated = false;
    promoted = false;
    origin = -1;
  }

(* The id counter is domain-local state: the parallel suite runner
   (Epic_core.Pool) compiles independent programs on worker domains, and ids
   must be reproduced exactly — they index the simulator's branch predictor
   and attribute profile samples — so each domain gets its own counter and
   every compilation resets it (the frontend calls [reset_ids] per program).
   A compile+simulate job is therefore bit-identical whether it runs on the
   main domain or on any worker. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get counter := 0
let id_counter () = !(Domain.DLS.get counter)
let restore_ids n = Domain.DLS.get counter := n

let fresh_id () =
  let c = Domain.DLS.get counter in
  incr c;
  !c

let create ?pred ?(dsts = []) ?(srcs = []) op =
  let id = fresh_id () in
  { id; op; dsts; srcs; pred; cycle = -1; attrs = default_attrs () }

(* A structural copy with a fresh id; [origin] records provenance so that
   profile weights and performance samples can be traced across duplication
   (tail duplication, peeling, inlining). *)
let copy i =
  let a = i.attrs in
  {
    id = fresh_id ();
    op = i.op;
    dsts = i.dsts;
    srcs = i.srcs;
    pred = i.pred;
    cycle = i.cycle;
    attrs =
      {
        mem_tag = a.mem_tag;
        taken_prob = a.taken_prob;
        weight = a.weight;
        recovery = a.recovery;
        check_reg = a.check_reg;
        frame_in = a.frame_in;
        frame_local = a.frame_local;
        speculated = a.speculated;
        promoted = a.promoted;
        origin = (if a.origin >= 0 then a.origin else i.id);
      };
  }

(* An identity-preserving structural copy: same id, same provenance, fresh
   mutable cells.  For program snapshots (see [Program.copy]) — the clone is
   the same instruction in a parallel copy of the program, so it must not
   draw from the id counter (ids feed the simulator's branch predictor
   indexing, and snapshotting must not perturb them). *)
let clone i =
  let a = i.attrs in
  {
    id = i.id;
    op = i.op;
    dsts = i.dsts;
    srcs = i.srcs;
    pred = i.pred;
    cycle = i.cycle;
    attrs =
      {
        mem_tag = a.mem_tag;
        taken_prob = a.taken_prob;
        weight = a.weight;
        recovery = a.recovery;
        check_reg = a.check_reg;
        frame_in = a.frame_in;
        frame_local = a.frame_local;
        speculated = a.speculated;
        promoted = a.promoted;
        origin = a.origin;
      };
  }

let is_branch i = Opcode.is_branch i.op
let is_call i = Opcode.is_call i.op
let is_load i = Opcode.is_load i.op
let is_store i = Opcode.is_store i.op
let is_mem i = Opcode.is_mem i.op

(* Does executing this instruction depend on control reaching it on the
   original path?  Speculative loads and pure computations may be hoisted. *)
let may_fault i = Opcode.may_fault i.op

(* Registers read by the instruction, including the guard predicate. *)
let uses i =
  let srcs =
    List.filter_map (function Operand.Reg r -> Some r | _ -> None) i.srcs
  in
  match i.pred with Some p -> p :: srcs | None -> srcs

let defs i = i.dsts

(* Branch target label, if this is a direct branch. *)
let branch_target i =
  match i.op with
  | Opcode.Br -> (
      match i.srcs with
      | Operand.Label l :: _ -> Some l
      | _ -> None)
  | _ -> None

(* Callee symbol, if this is a direct call. *)
let callee i =
  match i.op with
  | Opcode.Br_call -> (
      match i.srcs with Operand.Sym f :: _ -> Some f | _ -> None)
  | _ -> None

let substitute_uses subst i =
  i.srcs <-
    List.map
      (function
        | Operand.Reg r as o -> (
            match subst r with Some r' -> Operand.Reg r' | None -> o)
        | o -> o)
      i.srcs;
  match i.pred with
  | Some p -> ( match subst p with Some p' -> i.pred <- Some p' | None -> ())
  | None -> ()

let substitute_defs subst i =
  i.dsts <- List.map (fun r -> match subst r with Some r' -> r' | None -> r) i.dsts

let pp ppf i =
  let pp_pred ppf = function
    | Some p -> Fmt.pf ppf "(%a) " Reg.pp p
    | None -> Fmt.pf ppf "     "
  in
  let pp_dsts ppf = function
    | [] -> ()
    | ds -> Fmt.pf ppf "%a = " Fmt.(list ~sep:(any ", ") Reg.pp) ds
  in
  Fmt.pf ppf "%a%a%a %a" pp_pred i.pred pp_dsts i.dsts Opcode.pp i.op
    Fmt.(list ~sep:(any ", ") Operand.pp)
    i.srcs;
  if i.attrs.speculated then Fmt.pf ppf "  ;spec";
  if i.cycle >= 0 then Fmt.pf ppf "  ;c%d" i.cycle

let to_string i = Fmt.str "%a" pp i
