(* High-level IR interpreter.  Executes the (virtual-register) IR directly,
   at any point of the compilation pipeline before register allocation.  It
   is the reference semantics for differential testing of transformations,
   and — instrumented through the [hooks] — the engine behind control-flow
   profiling (Section 3.1 of the paper).

   It models the pieces of IA-64 semantics the structural transforms rely on:
   predicated execution, NaT bits produced by control-speculative loads to
   invalid addresses, speculation checks, and compare types. *)

type value = Vi of int64 | Vf of float | Vp of bool | Vnat

exception Fault of string
exception Exit_program of int
exception Out_of_fuel

type hooks = {
  on_block : Func.t -> Block.t -> unit;
  on_branch : Func.t -> Instr.t -> bool -> unit; (* executed branch, taken? *)
  on_call : string -> unit;
  on_indirect : Instr.t -> string -> unit; (* indirect call site -> callee *)
}

let no_hooks =
  {
    on_block = (fun _ _ -> ());
    on_branch = (fun _ _ _ -> ());
    on_call = (fun _ -> ());
    on_indirect = (fun _ _ -> ());
  }

type state = {
  program : Program.t;
  mem : Memimage.t;
  mutable heap : int64;
  output : Buffer.t;
  input : int64 array;
  mutable fuel : int; (* remaining dynamic instructions *)
  mutable executed : int;
  mutable nat_faults : int; (* NaT consumed by a non-speculative op *)
  mutable wild_loads : int; (* speculative accesses to unmapped pages *)
  mutable alat_recoveries : int; (* chk.a found its entry invalidated *)
  hooks : hooks;
  vspans : (string, int * int * int) Hashtbl.t;
      (* per-function virtual-register bank sizes (ints+brr, flts, prds);
         a host-speed cache, computed on first call of each function *)
}

(* One ALAT per frame would be unsound across our per-frame register files;
   like the hardware we keep one ALAT, keyed by destination register, and
   conservatively flush it at calls. *)

(* The frame's register file is flat (DESIGN.md §10): per-class arrays
   mirroring the simulator's frame, instead of a [value Reg.Tbl.t].  Values
   are coerced to the destination register's class at write time (with the
   same [as_int]/[as_float]/[as_pred] conversions reads used to apply), so
   every register access is a couple of array loads rather than a hashed
   lookup on a boxed key.  Physical banks have the IA-64 geometry; virtual
   banks are sized by the largest virtual id the function actually uses
   (hand-built test programs use small ids; [Func.fresh_reg] ids start at
   1000).  Branch registers never reach the executed IR and fold into the
   integer banks, as in the simulator. *)
type frame = {
  func : Func.t;
  pints : int64 array; (* physical r0-r127 (r0 writes dropped) *)
  pinat : bool array;
  pflts : float array; (* physical f0-f127 *)
  pfnat : bool array;
  pprds : bool array; (* physical p0-p63 (p0 pinned true) *)
  vints : int64 array; (* virtual, indexed by id *)
  vinat : bool array;
  vflts : float array;
  vfnat : bool array;
  vprds : bool array;
  alat : (int64 * int) Reg.Tbl.t; (* advanced-load entries: reg -> (addr, size) *)
}

let create ?(hooks = no_hooks) ?(fuel = 400_000_000) program input =
  Program.assign_addresses program;
  let mem = Memimage.create () in
  Memimage.load_program mem program;
  {
    program;
    mem;
    heap = Program.heap_base;
    output = Buffer.create 256;
    input;
    fuel;
    executed = 0;
    nat_faults = 0;
    wild_loads = 0;
    alat_recoveries = 0;
    hooks;
    vspans = Hashtbl.create 16;
  }

(* Virtual-register bank sizes for [f]: one more than the largest virtual id
   of each class appearing anywhere in the function (params, destinations,
   sources, qualifying predicates).  Every register the interpreter can
   touch during a call appears in one of those positions. *)
let compute_vspans (f : Func.t) =
  let si = ref 0 and sf = ref 0 and sp = ref 0 in
  let see (r : Reg.t) =
    if not r.Reg.phys then
      match r.Reg.cls with
      | Reg.Int | Reg.Brr -> if r.Reg.id >= !si then si := r.Reg.id + 1
      | Reg.Flt -> if r.Reg.id >= !sf then sf := r.Reg.id + 1
      | Reg.Prd -> if r.Reg.id >= !sp then sp := r.Reg.id + 1
  in
  List.iter see f.Func.params;
  Func.iter_instrs f (fun (i : Instr.t) ->
      List.iter see i.Instr.dsts;
      List.iter (function Operand.Reg r -> see r | _ -> ()) i.Instr.srcs;
      match i.Instr.pred with Some p -> see p | None -> ());
  (!si, !sf, !sp)

let vspans st (f : Func.t) =
  match Hashtbl.find_opt st.vspans f.Func.name with
  | Some s -> s
  | None ->
      let s = compute_vspans f in
      Hashtbl.add st.vspans f.Func.name s;
      s

let fresh_frame st (f : Func.t) =
  let si, sf, sp = vspans st f in
  let pprds = Array.make Reg.num_prd false in
  pprds.(0) <- true;
  (* p0 hardwired *)
  {
    func = f;
    pints = Array.make Reg.num_int 0L;
    pinat = Array.make Reg.num_int false;
    pflts = Array.make Reg.num_flt 0.;
    pfnat = Array.make Reg.num_flt false;
    pprds;
    vints = Array.make si 0L;
    vinat = Array.make si false;
    vflts = Array.make sf 0.;
    vfnat = Array.make sf false;
    vprds = Array.make sp false;
    alat = Reg.Tbl.create 8;
  }

let as_int = function
  | Vi i -> `I i
  | Vnat -> `Nat
  | Vf f -> `I (Int64.of_float f)
  | Vp b -> `I (if b then 1L else 0L)

let as_float = function
  | Vf f -> `F f
  | Vi i -> `F (Int64.to_float i)
  | Vnat -> `Nat
  | Vp b -> `F (if b then 1. else 0.)

let as_pred = function
  | Vp b -> b
  | Vi i -> not (Int64.equal i 0L)
  | Vf _ | Vnat -> false

let read_reg fr (r : Reg.t) =
  let id = r.Reg.id in
  match r.Reg.cls with
  | Reg.Prd -> Vp (if r.Reg.phys then fr.pprds.(id) else fr.vprds.(id))
  | Reg.Flt ->
      if r.Reg.phys then
        if fr.pfnat.(id) then Vnat else Vf fr.pflts.(id)
      else if fr.vfnat.(id) then Vnat
      else Vf fr.vflts.(id)
  | Reg.Int | Reg.Brr ->
      if r.Reg.phys then
        if fr.pinat.(id) then Vnat else Vi fr.pints.(id)
      else if fr.vinat.(id) then Vnat
      else Vi fr.vints.(id)

let write_reg fr (r : Reg.t) v =
  let id = r.Reg.id in
  match r.Reg.cls with
  | Reg.Prd ->
      if r.Reg.phys then begin
        if id <> 0 then fr.pprds.(id) <- as_pred v (* p0 pinned *)
      end
      else fr.vprds.(id) <- as_pred v
  | Reg.Flt -> (
      let flts, fnat = if r.Reg.phys then (fr.pflts, fr.pfnat) else (fr.vflts, fr.vfnat) in
      match as_float v with
      | `F f ->
          flts.(id) <- f;
          fnat.(id) <- false
      | `Nat -> fnat.(id) <- true)
  | Reg.Int | Reg.Brr ->
      if r.Reg.phys && id = 0 then () (* r0 hardwired zero *)
      else
        let ints, inat = if r.Reg.phys then (fr.pints, fr.pinat) else (fr.vints, fr.vinat) in
        (match as_int v with
        | `I i ->
            ints.(id) <- i;
            inat.(id) <- false
        | `Nat -> inat.(id) <- true)

let operand_value st fr (o : Operand.t) =
  match o with
  | Operand.Reg r -> read_reg fr r
  | Operand.Imm i -> Vi i
  | Operand.Fimm f -> Vf f
  | Operand.Label _ -> Vi 0L
  | Operand.Sym s -> (
      match Program.find_global st.program s with
      | Some g -> Vi g.Program.address
      | None -> Vi (Program.func_address st.program s))

(* Integer binary operation with NaT propagation. *)
let int_binop op a b =
  match (a, b) with
  | `Nat, _ | _, `Nat -> Vnat
  | `I x, `I y -> (
      match op with
      | Opcode.Add -> Vi (Int64.add x y)
      | Opcode.Sub -> Vi (Int64.sub x y)
      | Opcode.Mul -> Vi (Int64.mul x y)
      | Opcode.Div ->
          if Int64.equal y 0L then raise (Fault "division by zero")
          else Vi (Int64.div x y)
      | Opcode.Rem ->
          if Int64.equal y 0L then raise (Fault "remainder by zero")
          else Vi (Int64.rem x y)
      | Opcode.And -> Vi (Int64.logand x y)
      | Opcode.Or -> Vi (Int64.logor x y)
      | Opcode.Xor -> Vi (Int64.logxor x y)
      | Opcode.Shl -> Vi (Int64.shift_left x (Int64.to_int y land 63))
      | Opcode.Shr -> Vi (Int64.shift_right_logical x (Int64.to_int y land 63))
      | Opcode.Sra -> Vi (Int64.shift_right x (Int64.to_int y land 63))
      | _ -> invalid_arg "int_binop")

let flt_binop op a b =
  match (a, b) with
  | `Nat, _ | _, `Nat -> Vnat
  | `F x, `F y -> (
      match op with
      | Opcode.Fadd -> Vf (x +. y)
      | Opcode.Fsub -> Vf (x -. y)
      | Opcode.Fmul -> Vf (x *. y)
      | Opcode.Fdiv -> Vf (x /. y)
      | _ -> invalid_arg "flt_binop")

let print_int_value st (i : int64) =
  Buffer.add_string st.output (Int64.to_string i);
  Buffer.add_char st.output '\n'

let do_intrinsic st (k : Intrinsics.kind) (args : value list) =
  let geti n =
    match List.nth_opt args n with
    | Some v -> (
        match as_int v with
        | `I i -> i
        | `Nat ->
            st.nat_faults <- st.nat_faults + 1;
            0L)
    | None -> 0L
  in
  match k with
  | Intrinsics.Print_int ->
      print_int_value st (geti 0);
      []
  | Intrinsics.Print_char ->
      Buffer.add_char st.output (Char.chr (Int64.to_int (geti 0) land 0xff));
      []
  | Intrinsics.Malloc ->
      let bytes = Int64.to_int (geti 0) in
      let bytes = max 8 ((bytes + 15) / 16 * 16) in
      let addr = st.heap in
      st.heap <- Int64.add st.heap (Int64.of_int bytes);
      Memimage.map_range st.mem addr bytes;
      [ Vi addr ]
  | Intrinsics.Input ->
      let i = Int64.to_int (geti 0) in
      if i >= 0 && i < Array.length st.input then [ Vi st.input.(i) ] else [ Vi 0L ]
  | Intrinsics.Input_len -> [ Vi (Int64.of_int (Array.length st.input)) ]
  | Intrinsics.Memcpy ->
      let dst = geti 0 and src = geti 1 and n = Int64.to_int (geti 2) in
      for i = 0 to n - 1 do
        let b = Memimage.read st.mem (Int64.add src (Int64.of_int i)) 1 in
        Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 b
      done;
      []
  | Intrinsics.Memset ->
      let dst = geti 0 and v = geti 1 and n = Int64.to_int (geti 2) in
      for i = 0 to n - 1 do
        Memimage.write st.mem (Int64.add dst (Int64.of_int i)) 1 v
      done;
      []
  | Intrinsics.Exit -> raise (Exit_program (Int64.to_int (geti 0)))

(* Execute a load, applying the speculation model.  A non-speculative access
   to an unmapped or NULL page is a fatal fault; a speculative one yields NaT
   ("deferred exception") and is counted as a wild load when off the NULL
   page. *)
let do_load st (spec : Opcode.spec_kind) (addr : int64) size =
  match Memimage.classify st.mem addr with
  | Memimage.Ok -> Vi (Memimage.read st.mem addr size)
  | Memimage.Null_page -> (
      match spec with
      | Opcode.Nonspec | Opcode.Spec_advanced ->
          raise (Fault (Printf.sprintf "load from NULL page 0x%Lx" addr))
      | Opcode.Spec_general | Opcode.Spec_sentinel -> Vnat)
  | Memimage.Unmapped -> (
      match spec with
      | Opcode.Nonspec | Opcode.Spec_advanced ->
          raise (Fault (Printf.sprintf "load from unmapped 0x%Lx" addr))
      | Opcode.Spec_general | Opcode.Spec_sentinel ->
          st.wild_loads <- st.wild_loads + 1;
          Vnat)

(* Execute one function invocation; returns the list of returned values. *)
let rec exec_call st (fname : string) (args : value list) (caller_sp : int64) =
  st.hooks.on_call fname;
  match Intrinsics.of_name fname with
  | Some k -> do_intrinsic st k args
  | None ->
      let f = Program.find_func_exn st.program fname in
      let fr = fresh_frame st f in
      List.iteri
        (fun i p -> match List.nth_opt args i with
          | Some v -> write_reg fr p v
          | None -> ())
        f.Func.params;
      write_reg fr Reg.sp (Vi caller_sp);
      exec_block st fr (Func.entry f)

and exec_block st fr (b : Block.t) =
  st.hooks.on_block fr.func b;
  exec_instrs st fr b b.Block.instrs

and exec_instrs st fr (b : Block.t) = function
  | [] -> (
      (* Fall through to the next block in layout order. *)
      match Func.fallthrough fr.func b with
      | Some nb -> exec_block st fr nb
      | None -> raise (Fault (fr.func.Func.name ^ ": fell off the end of " ^ b.Block.label)))
  | (i : Instr.t) :: rest -> (
      if st.fuel <= 0 then raise Out_of_fuel;
      st.fuel <- st.fuel - 1;
      st.executed <- st.executed + 1;
      let guard = match i.Instr.pred with None -> true | Some p -> as_pred (read_reg fr p) in
      let continue () = exec_instrs st fr b rest in
      let goto label =
        match Func.find_block fr.func label with
        | Some nb -> exec_block st fr nb
        | None -> raise (Fault ("branch to unknown label " ^ label))
      in
      match i.Instr.op with
      | Opcode.Cmp (c, ct) | Opcode.Fcmp (c, ct) -> (
          let fcmp = match i.Instr.op with Opcode.Fcmp _ -> true | _ -> false in
          let pt, pf =
            match i.Instr.dsts with
            | [ pt; pf ] -> (pt, pf)
            | _ -> raise (Fault "cmp without two destinations")
          in
          let cond () =
            match i.Instr.srcs with
            | [ a; b' ] ->
                if fcmp then (
                  match (as_float (operand_value st fr a), as_float (operand_value st fr b')) with
                  | `F x, `F y -> Some (Opcode.eval_fcmp c x y)
                  | _ -> None)
                else (
                  match (as_int (operand_value st fr a), as_int (operand_value st fr b')) with
                  | `I x, `I y -> Some (Opcode.eval_icmp c x y)
                  | _ -> None (* NaT input: both targets cleared *))
            | _ -> raise (Fault "cmp arity")
          in
          match ct with
          | Opcode.Norm ->
              if guard then (
                match cond () with
                | Some r ->
                    write_reg fr pt (Vp r);
                    write_reg fr pf (Vp (not r))
                | None ->
                    write_reg fr pt (Vp false);
                    write_reg fr pf (Vp false));
              continue ()
          | Opcode.Unc ->
              (* unc clears both targets even when the guard is false *)
              write_reg fr pt (Vp false);
              write_reg fr pf (Vp false);
              if guard then (
                match cond () with
                | Some r ->
                    write_reg fr pt (Vp r);
                    write_reg fr pf (Vp (not r))
                | None -> ());
              continue ()
          | Opcode.Orform ->
              if guard then (
                match cond () with
                | Some true ->
                    write_reg fr pt (Vp true);
                    write_reg fr pf (Vp true)
                | Some false | None -> ());
              continue ())
      | _ when not guard ->
          (* predicate-squashed: fetched but not executed *)
          (match i.Instr.op with
          | Opcode.Br -> st.hooks.on_branch fr.func i false
          | _ -> ());
          continue ()
      | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
      | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
      | Opcode.Sra -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a; b' ] ->
              let va = as_int (operand_value st fr a)
              and vb = as_int (operand_value st fr b') in
              (* Div/Rem by zero under speculation must defer, not kill. *)
              let v =
                try int_binop i.Instr.op va vb
                with Fault _ when i.Instr.attrs.Instr.speculated -> Vnat
              in
              write_reg fr d v;
              continue ()
          | _ -> raise (Fault ("bad ALU instruction " ^ Instr.to_string i)))
      | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a; b' ] ->
              let v =
                flt_binop i.Instr.op
                  (as_float (operand_value st fr a))
                  (as_float (operand_value st fr b'))
              in
              write_reg fr d v;
              continue ()
          | _ -> raise (Fault "bad FP instruction"))
      | Opcode.Fneg -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a ] ->
              (match as_float (operand_value st fr a) with
              | `F x -> write_reg fr d (Vf (-.x))
              | `Nat -> write_reg fr d Vnat);
              continue ()
          | _ -> raise (Fault "bad fneg"))
      | Opcode.Cvt_fi -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a ] ->
              (match as_float (operand_value st fr a) with
              | `F x -> write_reg fr d (Vi (Int64.of_float x))
              | `Nat -> write_reg fr d Vnat);
              continue ()
          | _ -> raise (Fault "bad cvt.fi"))
      | Opcode.Cvt_if -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a ] ->
              (match as_int (operand_value st fr a) with
              | `I x -> write_reg fr d (Vf (Int64.to_float x))
              | `Nat -> write_reg fr d Vnat);
              continue ()
          | _ -> raise (Fault "bad cvt.if"))
      | Opcode.Mov | Opcode.Sxt _ -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a ] ->
              let v = operand_value st fr a in
              let v =
                match (i.Instr.op, v) with
                | Opcode.Sxt sz, Vi x ->
                    let bits = 8 * Opcode.size_bytes sz in
                    Vi (Int64.shift_right (Int64.shift_left x (64 - bits)) (64 - bits))
                | _ -> v
              in
              write_reg fr d v;
              continue ()
          | _ -> raise (Fault "bad mov"))
      | Opcode.Lea -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ base; off ] ->
              let b' =
                match operand_value st fr base with
                | Vi x -> x
                | _ -> raise (Fault "lea base")
              in
              let o =
                match operand_value st fr off with Vi x -> x | _ -> 0L
              in
              write_reg fr d (Vi (Int64.add b' o));
              continue ()
          | _ -> raise (Fault "bad lea"))
      | Opcode.Ld (sz, spec) -> (
          match (i.Instr.dsts, i.Instr.srcs) with
          | [ d ], [ a ] ->
              (match as_int (operand_value st fr a) with
              | `I addr ->
                  let v = do_load st spec addr (Opcode.size_bytes sz) in
                  (* Floats live in memory as IEEE-754 bit patterns. *)
                  let v =
                    match (v, d.Reg.cls) with
                    | Vi bits, Reg.Flt -> Vf (Int64.float_of_bits bits)
                    | _ -> v
                  in
                  if spec = Opcode.Spec_advanced then
                    Reg.Tbl.replace fr.alat d (addr, Opcode.size_bytes sz);
                  write_reg fr d v
              | `Nat ->
                  (* address is NaT: propagate (speculative chains) *)
                  if spec = Opcode.Nonspec then st.nat_faults <- st.nat_faults + 1;
                  write_reg fr d Vnat);
              continue ()
          | _ -> raise (Fault "bad load"))
      | Opcode.St sz -> (
          match i.Instr.srcs with
          | [ a; v ] ->
              let stored =
                match operand_value st fr v with
                | Vf f -> Vi (Int64.bits_of_float f)
                | x -> x
              in
              (match (as_int (operand_value st fr a), as_int stored) with
              | `I addr, `I x -> (
                  (* invalidate overlapping advanced-load entries; the ALAT
                     is empty unless an advanced load is in flight, so check
                     the size before scanning, and drop stale entries in
                     place rather than via an intermediate list *)
                  if Reg.Tbl.length fr.alat > 0 then begin
                    let bytes = Opcode.size_bytes sz in
                    Reg.Tbl.filter_map_inplace
                      (fun _r ((a, n) as e) ->
                        let lo = max (Int64.to_int a) (Int64.to_int addr) in
                        let hi =
                          min
                            (Int64.to_int a + n)
                            (Int64.to_int addr + bytes)
                        in
                        if lo < hi then None else Some e)
                      fr.alat
                  end;
                  match Memimage.classify st.mem addr with
                  | Memimage.Ok -> Memimage.write st.mem addr (Opcode.size_bytes sz) x
                  | Memimage.Null_page | Memimage.Unmapped ->
                      raise (Fault (Printf.sprintf "store to invalid 0x%Lx" addr)))
              | `Nat, _ | _, `Nat -> st.nat_faults <- st.nat_faults + 1);
              continue ()
          | _ -> raise (Fault "bad store"))
      | Opcode.Chk sz -> (
          match i.Instr.srcs with
          | [ Operand.Reg r; a ] -> (
              match read_reg fr r with
              | Vnat ->
                  (* recovery: reload non-speculatively *)
                  (match as_int (operand_value st fr a) with
                  | `I addr ->
                      let v = do_load st Opcode.Nonspec addr (Opcode.size_bytes sz) in
                      let v =
                        match (v, r.Reg.cls) with
                        | Vi bits, Reg.Flt -> Vf (Int64.float_of_bits bits)
                        | _ -> v
                      in
                      write_reg fr r v
                  | `Nat -> st.nat_faults <- st.nat_faults + 1);
                  continue ()
              | _ -> continue ())
          | _ -> raise (Fault "bad chk"))
      | Opcode.Chka sz -> (
          match i.Instr.srcs with
          | [ Operand.Reg r; a ] ->
              if Reg.Tbl.mem fr.alat r then continue ()
              else begin
                (* entry invalidated by an intervening store: recover *)
                st.alat_recoveries <- st.alat_recoveries + 1;
                (match as_int (operand_value st fr a) with
                | `I addr ->
                    let v = do_load st Opcode.Nonspec addr (Opcode.size_bytes sz) in
                    let v =
                      match (v, r.Reg.cls) with
                      | Vi bits, Reg.Flt -> Vf (Int64.float_of_bits bits)
                      | _ -> v
                    in
                    write_reg fr r v
                | `Nat -> st.nat_faults <- st.nat_faults + 1);
                continue ()
              end
          | _ -> raise (Fault "bad chk.a"))
      | Opcode.Br -> (
          match i.Instr.srcs with
          | [ Operand.Label l ] ->
              st.hooks.on_branch fr.func i true;
              goto l
          | _ -> raise (Fault "bad br"))
      | Opcode.Br_call -> (
          match i.Instr.srcs with
          | target :: args ->
              let argv = List.map (operand_value st fr) args in
              let sp =
                match as_int (read_reg fr Reg.sp) with `I s -> s | `Nat -> 0L
              in
              let results =
                match target with
                | Operand.Sym fname -> exec_call st fname argv sp
                | Operand.Reg r -> (
                    match as_int (read_reg fr r) with
                    | `I addr -> (
                        match Program.func_at_address st.program addr with
                        | Some fname ->
                            st.hooks.on_indirect i fname;
                            exec_call st fname argv sp
                        | None ->
                            raise (Fault (Printf.sprintf "indirect call to 0x%Lx" addr)))
                    | `Nat -> raise (Fault "indirect call through NaT"))
                | _ -> raise (Fault "bad call target")
              in
              Reg.Tbl.reset fr.alat;
              List.iteri
                (fun n d ->
                  match List.nth_opt results n with
                  | Some v -> write_reg fr d v
                  | None -> write_reg fr d (Vi 0L))
                i.Instr.dsts;
              continue ()
          | [] -> raise (Fault "bad call"))
      | Opcode.Br_ret -> List.map (operand_value st fr) i.Instr.srcs
      | Opcode.Alloc | Opcode.Nop -> continue ())

(* Run the whole program; returns (exit_code, output). *)
let run ?hooks ?fuel (p : Program.t) (input : int64 array) =
  let st = create ?hooks ?fuel p input in
  let init_sp = Int64.sub Program.stack_top 128L in
  let code, st =
    try
      let results = exec_call st p.Program.entry [] init_sp in
      let code =
        match results with
        | Vi i :: _ -> Int64.to_int i
        | _ -> 0
      in
      (code, st)
    with Exit_program c -> (c, st)
  in
  (code, Buffer.contents st.output, st)
