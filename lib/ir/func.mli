(** Functions: an ordered list of blocks (layout order — the first block is
    the entry and fall-through follows layout), parameter registers, and
    counters for fresh virtual registers and labels. *)

type index
(** Predecoded label->block / block->fallthrough tables (DESIGN.md §10).
    Built lazily by {!find_block}/{!fallthrough}; keyed on the physical
    identity of [blocks], so any structural change (which necessarily
    replaces the immutable list spine) invalidates it automatically. *)

type t = {
  name : string;
  mutable params : Reg.t list;
  mutable blocks : Block.t list;  (** layout order; head = entry *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable frame_bytes : int;  (** memory-stack frame (arrays, spills) *)
  mutable n_stacked : int;  (** stacked registers used; set by regalloc *)
  mutable returns_float : bool;
  mutable index : index option;  (** label-index cache; managed internally *)
}

val create : string -> Reg.t list -> t

(** A structural deep copy: fresh blocks and instructions (ids preserved,
    see [Instr.clone]); registers are immutable and stay shared. *)
val copy : t -> t

(** The entry block.  @raise Invalid_argument on an empty function. *)
val entry : t -> Block.t

val fresh_reg : t -> Reg.cls -> Reg.t
val fresh_label : t -> string -> string
val find_block : t -> string -> Block.t option
val find_block_exn : t -> string -> Block.t
val block_index : t -> string -> int option

(** The block control falls through to from [b] (the next in layout). *)
val fallthrough : t -> Block.t -> Block.t option

(** All successors of a block: explicit branch targets plus the
    fall-through block when the block can fall through. *)
val successors : t -> Block.t -> string list

(** Map from block label to the labels of its predecessors. *)
val predecessors : t -> (string, string list) Hashtbl.t

val iter_instrs : t -> (Instr.t -> unit) -> unit
val fold_instrs : t -> ('a -> Instr.t -> 'a) -> 'a -> 'a
val instr_count : t -> int
val insert_after : t -> Block.t -> Block.t -> unit
val append_block : t -> Block.t -> unit

(** Remove blocks unreachable from the entry (keeping reachable recovery
    blocks referenced by speculation checks). *)
val remove_unreachable : t -> unit

(** Move cold-marked blocks to the end of the layout, preserving relative
    order.  Callers must have made the affected fall-throughs explicit. *)
val layout_cold_last : t -> unit

val pp : Format.formatter -> t -> unit
