(* Functions: an ordered list of blocks (layout order), parameter registers
   and counters for generating fresh virtual registers and labels.  The first
   block is the entry. *)

(* Predecoded control flow (DESIGN.md §10): per-function label->block and
   block->fallthrough tables, so the execution engines resolve a taken
   branch or a block exit in one hash lookup instead of a linear scan of
   the block list.  The cache is keyed on the *physical identity* of the
   [blocks] list: OCaml lists are immutable, so every structural change —
   insertion, removal, reordering, reassignment — necessarily replaces the
   list spine, and a simple [==] check detects it.  In-place mutation of a
   block's instructions never changes its label or layout position, so it
   cannot stale the index. *)
type index = {
  ix_spine : Block.t list; (* the blocks value this index was built from *)
  ix_blocks : (string, Block.t) Hashtbl.t; (* label -> first block *)
  ix_fall : (string, Block.t * Block.t option) Hashtbl.t;
      (* label -> (first block with that label, its layout successor) *)
}

type t = {
  name : string;
  mutable params : Reg.t list;
  mutable blocks : Block.t list; (* layout order; head = entry *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable frame_bytes : int; (* memory-stack frame for local arrays/spills *)
  mutable n_stacked : int; (* stacked registers used, set by regalloc *)
  mutable returns_float : bool;
  mutable index : index option; (* lazily built; auto-invalidated by spine *)
}

let create name params =
  {
    name;
    params;
    blocks = [];
    next_reg = 1000;
    next_label = 0;
    frame_bytes = 0;
    n_stacked = 0;
    returns_float = false;
    index = None;
  }

let build_index (blocks : Block.t list) =
  let n = List.length blocks in
  let ix_blocks = Hashtbl.create (max 8 (2 * n)) in
  let ix_fall = Hashtbl.create (max 8 (2 * n)) in
  let rec go = function
    | [] -> ()
    | (b : Block.t) :: tl ->
        (* duplicate labels: keep the first, matching [List.find_opt] *)
        if not (Hashtbl.mem ix_blocks b.Block.label) then begin
          Hashtbl.add ix_blocks b.Block.label b;
          Hashtbl.add ix_fall b.Block.label
            (b, match tl with nb :: _ -> Some nb | [] -> None)
        end;
        go tl
  in
  go blocks;
  { ix_spine = blocks; ix_blocks; ix_fall }

let index f =
  match f.index with
  | Some ix when ix.ix_spine == f.blocks -> ix
  | _ ->
      let ix = build_index f.blocks in
      f.index <- Some ix;
      ix

(* A structural deep copy: fresh blocks and instructions; registers are
   immutable values and stay shared.  Lets a driver snapshot a function
   before destructive transformation. *)
let copy f =
  {
    name = f.name;
    params = f.params;
    blocks = List.map Block.copy f.blocks;
    next_reg = f.next_reg;
    next_label = f.next_label;
    frame_bytes = f.frame_bytes;
    n_stacked = f.n_stacked;
    returns_float = f.returns_float;
    index = None;
  }

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Func.entry: empty function " ^ f.name)

let fresh_reg f cls =
  let id = f.next_reg in
  f.next_reg <- id + 1;
  Reg.virt id cls

let fresh_label f base =
  let n = f.next_label in
  f.next_label <- n + 1;
  Printf.sprintf "%s_%d" base n

let find_block f label = Hashtbl.find_opt (index f).ix_blocks label

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: no block %s in %s" label f.name)

let block_index f label =
  let rec go i = function
    | [] -> None
    | b :: _ when b.Block.label = label -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 f.blocks

(* The block control falls through to when [b] does not take a branch, i.e.
   the next block in layout order.  [None] at the end of the layout.  The
   indexed fast path applies when [b] is the first block bearing its label
   (always, for well-formed functions); a duplicate-label alias falls back
   to the exact linear scan. *)
let fallthrough f b =
  match Hashtbl.find_opt (index f).ix_fall b.Block.label with
  | Some (b', next) when b' == b -> next
  | _ ->
      let rec go = function
        | x :: (y :: _ as tl) -> if x == b then Some y else go tl
        | [ _ ] | [] -> None
      in
      go f.blocks

(* All successors of [b]: explicit branch targets plus the fall-through block
   when the block can fall through. *)
let successors f b =
  let targets = Block.branch_targets b in
  let fall =
    if Block.ends_in_unconditional b then []
    else
      match fallthrough f b with Some n -> [ n.Block.label ] | None -> []
  in
  let seen = Hashtbl.create 4 in
  List.filter
    (fun l ->
      if Hashtbl.mem seen l then false
      else (
        Hashtbl.add seen l ();
        true))
    (targets @ fall)

(* Map from block label to the labels of its predecessors. *)
let predecessors f =
  let preds : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.Block.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some l -> Hashtbl.replace preds s (b.Block.label :: l)
          | None -> ())
        (successors f b))
    f.blocks;
  preds

let iter_instrs f g = List.iter (fun b -> List.iter g b.Block.instrs) f.blocks

let fold_instrs f g acc =
  List.fold_left
    (fun acc b -> List.fold_left g acc b.Block.instrs)
    acc f.blocks

let instr_count f = fold_instrs f (fun n _ -> n + 1) 0

(* Insert [nb] right after block [after] in layout order. *)
let insert_after f after nb =
  let rec go = function
    | [] -> [ nb ]
    | x :: tl when x == after -> x :: nb :: tl
    | x :: tl -> x :: go tl
  in
  f.blocks <- go f.blocks

let append_block f b = f.blocks <- f.blocks @ [ b ]

(* Remove blocks unreachable from the entry (they would otherwise distort
   code-size and instruction-cache measurements). *)
let remove_unreachable f =
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
      let reachable = Hashtbl.create 16 in
      let rec visit label =
        if not (Hashtbl.mem reachable label) then begin
          Hashtbl.add reachable label ();
          match find_block f label with
          | Some b -> List.iter visit (successors f b)
          | None -> ()
        end
      in
      visit entry.Block.label;
      (* Keep recovery blocks: they are reached via speculation checks. *)
      List.iter
        (fun b ->
          List.iter
            (fun (i : Instr.t) ->
              match i.attrs.recovery with
              | Some l -> if Hashtbl.mem reachable b.Block.label then visit l
              | None -> ())
            b.Block.instrs)
        f.blocks;
      f.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.Block.label) f.blocks

(* Move cold-marked blocks to the end of the layout, preserving relative
   order, so that hot code is contiguous (block layout per Section 3.1). *)
let layout_cold_last f =
  match f.blocks with
  | [] -> ()
  | entry :: _ ->
      ignore entry;
      let hot, cold = List.partition (fun b -> not b.Block.cold) f.blocks in
      (* A cold block that could be fallen into from a hot block must stay
         reachable: layout change is only safe if every hot block that fell
         through to a cold block gets an explicit branch.  Callers are
         expected to have added explicit branches already; [Verify] checks. *)
      f.blocks <- hot @ cold

let pp ppf f =
  Fmt.pf ppf "func @%s(%a)  ; frame=%dB stacked=%d@." f.name
    Fmt.(list ~sep:(any ", ") Reg.pp)
    f.params f.frame_bytes f.n_stacked;
  List.iter (fun b -> Block.pp ppf b) f.blocks
