(* Whole programs: functions plus global data.  Global variables live at
   fixed addresses assigned by [assign_addresses]; the simulator and the
   high-level interpreter share this layout. *)

type global = {
  gname : string;
  size : int; (* bytes *)
  init : int64 array option; (* initial 8-byte words, zero if absent *)
  mutable address : int64; (* assigned by [assign_addresses] *)
}

type t = {
  mutable funcs : Func.t list; (* definition order *)
  mutable globals : global list;
  mutable entry : string; (* entry function, normally "main" *)
}

let create () = { funcs = []; globals = []; entry = "main" }

let add_func p f = p.funcs <- p.funcs @ [ f ]

(* A structural deep copy: fresh functions, blocks, instructions and global
   descriptors (initializer arrays are read-only and stay shared).  Lets the
   driver snapshot a program before destructive transformation and retry
   compilation from the snapshot instead of re-parsing the source.
   Instruction ids are preserved ([Instr.clone]): the snapshot is the same
   program, and taking it must not advance the global id counter. *)
let copy p =
  {
    funcs = List.map Func.copy p.funcs;
    globals = List.map (fun g -> { g with gname = g.gname }) p.globals;
    entry = p.entry;
  }

let add_global p ?init gname ~size =
  let g = { gname; size; init; address = 0L } in
  p.globals <- p.globals @ [ g ];
  g

let find_func p name = List.find_opt (fun f -> f.Func.name = name) p.funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg ("Program.find_func: no function " ^ name)

let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

let find_global_exn p name =
  match find_global p name with
  | Some g -> g
  | None -> invalid_arg ("Program.find_global: no global " ^ name)

(* Data segment base; the zero page is reserved as the architected NaT page
   used to absorb speculative NULL dereferences cheaply (paper footnote 8). *)
let data_base = 0x10000L
let heap_base = 0x200000L
let stack_top = 0x800000L
let code_base = 0x4000L

(* Functions have stable "addresses" so that function pointers can be stored
   in memory (indirect calls in eon- and gap-like workloads). *)
let func_address p name =
  let rec go i = function
    | [] -> invalid_arg ("Program.func_address: no function " ^ name)
    | f :: _ when f.Func.name = name -> Int64.add code_base (Int64.of_int (i * 64))
    | _ :: tl -> go (i + 1) tl
  in
  go 0 p.funcs

let func_at_address p (a : int64) =
  let off = Int64.to_int (Int64.sub a code_base) in
  if off < 0 || off mod 64 <> 0 then None
  else List.nth_opt p.funcs (off / 64) |> Option.map (fun f -> f.Func.name)

let assign_addresses p =
  let addr = ref data_base in
  List.iter
    (fun g ->
      g.address <- !addr;
      let sz = Int64.of_int ((g.size + 15) / 16 * 16) in
      addr := Int64.add !addr sz)
    p.globals

let iter_instrs p f =
  List.iter (fun fn -> Func.iter_instrs fn f) p.funcs

let instr_count p =
  List.fold_left (fun n f -> n + Func.instr_count f) 0 p.funcs

let pp ppf p =
  List.iter
    (fun g -> Fmt.pf ppf "global @%s : %dB @@ 0x%Lx@." g.gname g.size g.address)
    p.globals;
  List.iter (fun f -> Fmt.pf ppf "@.%a" Func.pp f) p.funcs

let to_string p = Fmt.str "%a" pp p
