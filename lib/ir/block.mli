(** Basic blocks — or, after structural transformation, superblocks and
    hyperblocks.  A block is a straight-line instruction sequence that may
    contain internal side-exit branches (superblocks) and predicated
    instructions (hyperblocks).  Control that takes no branch falls through
    to the next block in the function's layout order, so layout order is
    meaningful both semantically and for instruction-cache behaviour. *)

type kind =
  | Plain
  | Super  (** single-entry trace formed by superblock formation *)
  | Hyper  (** if-converted predicated region *)
  | Recovery  (** sentinel-speculation recovery code; laid out cold *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
  mutable weight : float;  (** profiled entry count *)
  mutable kind : kind;
  mutable cold : bool;  (** laid out in the function's cold section *)
}

val create : ?kind:kind -> string -> t

(** A snapshot deep copy: fresh instruction cells with the same ids
    ([Instr.clone]), so snapshotting never perturbs the global id counter. *)
val copy : t -> t
val append : t -> Instr.t -> unit
val instr_count : t -> int

(** Labels this block can branch to, in instruction order (the fall-through
    successor is not included; see [Func.successors]). *)
val branch_targets : t -> string list

(** True when control cannot fall through past the end of this block. *)
val ends_in_unconditional : t -> bool

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
