(** IR instructions.  Mutable records, rewritten in place by the
    transformation passes (the Lcode tradition).  Every instruction carries
    a unique id used for profile annotation, memory-dependence tags and
    performance-monitor attribution. *)

type attrs = {
  mutable mem_tag : int list option;
      (** sorted abstract-location ids this memory op may touch; [None]
          means unknown (conservatively aliases everything) *)
  mutable taken_prob : float;  (** branches: profiled taken probability *)
  mutable weight : float;  (** profiled dynamic execution count *)
  mutable recovery : string option;  (** Chk: label of the recovery block *)
  mutable check_reg : Reg.t option;  (** chk.s/chk.a: the checked register *)
  mutable frame_in : int;
  mutable frame_local : int;
  mutable speculated : bool;  (** hoisted or promoted above its guard *)
  mutable promoted : bool;  (** speculated via predicate promotion *)
  mutable origin : int;  (** id of the instruction this was copied from *)
}

type t = {
  id : int;
  mutable op : Opcode.t;
  mutable dsts : Reg.t list;
  mutable srcs : Operand.t list;
  mutable pred : Reg.t option;  (** qualifying predicate; [None] = always *)
  mutable cycle : int;  (** issue cycle within the block; -1 = unscheduled *)
  attrs : attrs;
}

(** Reset the id counter (done per program by the frontend).  The counter
    is domain-local ([Domain.DLS]): concurrent compilations on distinct
    domains draw from independent counters, and because every compilation
    starts from a reset, the ids assigned to a program do not depend on
    which domain compiled it. *)
val reset_ids : unit -> unit

(** Current value of this domain's id counter. *)
val id_counter : unit -> int

(** Restore the global id counter to a previously saved value.  Used by the
    driver's register-pressure fallback so that recompiling from a snapshot
    assigns the same ids a recompile from source would. *)
val restore_ids : int -> unit

val fresh_id : unit -> int
val create : ?pred:Reg.t -> ?dsts:Reg.t list -> ?srcs:Operand.t list -> Opcode.t -> t

(** Structural copy with a fresh id; [origin] records provenance across
    duplication (tail duplication, peeling, inlining). *)
val copy : t -> t

(** Identity-preserving structural copy: same id and provenance, fresh
    mutable cells.  For program snapshots ({!Program.copy}); does not draw
    from the id counter. *)
val clone : t -> t

val is_branch : t -> bool
val is_call : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

(** May executing this instruction fault or have side effects (so it cannot
    be hoisted above a branch without speculation support)? *)
val may_fault : t -> bool

(** Registers read, including the qualifying predicate. *)
val uses : t -> Reg.t list

val defs : t -> Reg.t list

(** Branch target label, for direct branches. *)
val branch_target : t -> string option

(** Callee symbol, for direct calls. *)
val callee : t -> string option

(** Rewrite register uses (sources and the guard) through [subst]. *)
val substitute_uses : (Reg.t -> Reg.t option) -> t -> unit

val substitute_defs : (Reg.t -> Reg.t option) -> t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
