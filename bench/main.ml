(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (one sub-command per artifact; default = all), and
   times the compiler phases themselves with Bechamel.

     dune exec bench/main.exe                 # all tables + figures
     dune exec bench/main.exe table1 fig5     # a subset
     dune exec bench/main.exe phases          # Bechamel phase timings only

   Artifacts: table1 fig2 fig5 fig6 fig7 fig8 fig10 stats spec_model
   profvar ablations phases.

   `--json FILE` additionally writes the whole suite result (per-workload,
   per-config cycles, category arrays, counters, pass timings, profiles)
   as one JSON document — the machine-readable companion to the tables.

   `-j N` (or `--jobs N`) shards the 48 compile+simulate jobs over N
   domains; the result is byte-identical to `-j 1` (the determinism test
   and the CI gate enforce it).  The default is the machine's recommended
   domain count, capped at the job count; `-j 1` is the explicit
   sequential escape hatch.  `--workloads a,b,c` restricts the suite to
   a subset, and `--normalize-time` zeroes the wall-clock fields of the
   JSON export so two runs can be diffed byte-for-byte.

   `sweep` runs the machine-sensitivity matrix (lib/sweep) instead of the
   paper artifacts; it only runs when named explicitly, never as part of
   the default "everything" run.  `--variants v,..` selects machine
   variants and `--sweep-baseline FILE` diffs the normalized sweep JSON
   against a stored baseline, failing on any difference (the CI
   regression gate).

   `sample_acc` runs the sampled-simulation accuracy harness (lib/sample):
   every selected workload in full and under interval sampling, asserting
   the documented error budgets (geomean total <= 2%, per-category <= 5%)
   and printing per-workload errors and speedups.  `--sample-plan I:D[:W]`
   overrides the sampling plan and `--sample-json FILE` writes the error
   report as JSON (the CI `sample-accuracy` job's artifact).  Explicit-only
   and always sequential (-j is ignored) so the speedups are wall-clock
   trustworthy.

   `causal` runs the COZ-style virtual-speedup matrix (lib/causal) on
   gzip,twolf (or the --workloads subset), prints the ranked causal
   report, and fails unless the causal ranking of the front-end /
   br-mispredict categories agrees with the perfect-* sweep deltas (the
   cross-check invariant of DESIGN.md §11).  Explicit-only, like sweep.

   Exit status: non-zero if any run's simulated output diverged from the
   reference interpreter (CI fails on divergence, not just a warning). *)

let suite_artifacts =
  [ "table1"; "fig2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig10"; "stats" ]

(* Artifacts that run only when named explicitly (too broad or too slow to
   fold into the default "everything" run). *)
let explicit_artifacts = [ "sweep"; "causal"; "sample_acc" ]

let all_artifacts =
  suite_artifacts
  @ [ "spec_model"; "profvar"; "ablations"; "data_spec"; "phases" ]
  @ explicit_artifacts

(* --- Bechamel: compiler-phase timings ----------------------------------- *)

let phase_benchmarks () =
  let open Bechamel in
  let w = Epic_workloads.Suite.find_exn "crafty" in
  let src = w.Epic_workloads.Workload.source in
  let train = w.Epic_workloads.Workload.train in
  let prepared_ir () =
    let p = Epic_frontend.Lower.compile_source src in
    ignore (Epic_analysis.Profile.profile_and_annotate p train);
    ignore (Epic_analysis.Points_to.analyze p);
    Epic_opt.Pipeline.run_classical p;
    Epic_analysis.Profile.reprofile p train;
    p
  in
  let tests =
    [
      Test.make ~name:"frontend: parse+lower crafty"
        (Staged.stage (fun () -> ignore (Epic_frontend.Lower.compile_source src)));
      Test.make ~name:"profile: train run"
        (Staged.stage (fun () ->
             let p = Epic_frontend.Lower.compile_source src in
             ignore (Epic_analysis.Profile.profile_and_annotate p train)));
      Test.make ~name:"classical optimization"
        (Staged.stage (fun () ->
             let p = Epic_frontend.Lower.compile_source src in
             ignore (Epic_analysis.Profile.profile_and_annotate p train);
             ignore (Epic_analysis.Points_to.analyze p);
             Epic_opt.Pipeline.run_classical p));
      Test.make ~name:"region formation (hyper+super+peel)"
        (Staged.stage (fun () ->
             let p = prepared_ir () in
             ignore (Epic_ilp.Peel.run p);
             Epic_analysis.Profile.reprofile p train;
             Epic_ilp.Hyperblock.run p;
             Epic_analysis.Profile.reprofile p train;
             Epic_ilp.Superblock.run p));
      Test.make ~name:"backend (regalloc+schedule+layout)"
        (Staged.stage (fun () ->
             let p = prepared_ir () in
             Epic_sched.Regalloc.run p;
             Epic_sched.List_sched.run p;
             ignore (Epic_sched.Layout.build p)));
      Test.make ~name:"full ILP-CS compile (crafty)"
        (Staged.stage (fun () ->
             ignore
               (Epic_core.Driver.compile ~config:Epic_core.Config.ilp_cs ~train src)));
      Test.make ~name:"simulate crafty train (ILP-CS)"
        (Staged.stage
           (let compiled =
              Epic_core.Driver.compile ~config:Epic_core.Config.ilp_cs ~train src
            in
            fun () -> ignore (Epic_core.Driver.run compiled train)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.8) ~kde:(Some 300) () in
    Benchmark.all cfg instances test
  in
  Printf.printf "\n== Compiler phase timings (Bechamel, monotonic clock) ==\n\n";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Bechamel.Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-44s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-44s (no estimate)\n" name)
        results)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Peel off the option flags before artifact-name validation. *)
  let json_file = ref None in
  let jobs = ref 0 (* 0 = auto: recommended domain count, capped at jobs *) in
  let subset = ref None in
  let normalize_time = ref false in
  let sweep_variants = ref None in
  let sweep_baseline = ref None in
  let sample_json = ref None in
  let sample_plan = ref Epic_sim.Sampling.default_plan in
  let int_arg flag v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | _ ->
        Printf.eprintf "%s expects a positive integer, got %S\n" flag v;
        exit 2
  in
  let rec split_opts acc = function
    | "--json" :: f :: rest ->
        json_file := Some f;
        split_opts acc rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_arg "-j" v;
        split_opts acc rest
    | "--workloads" :: v :: rest ->
        subset := Some (String.split_on_char ',' v);
        split_opts acc rest
    | "--normalize-time" :: rest ->
        normalize_time := true;
        split_opts acc rest
    | "--variants" :: v :: rest ->
        sweep_variants := Some (String.split_on_char ',' v);
        split_opts acc rest
    | "--sweep-baseline" :: f :: rest ->
        sweep_baseline := Some f;
        split_opts acc rest
    | "--sample-json" :: f :: rest ->
        sample_json := Some f;
        split_opts acc rest
    | "--sample-plan" :: v :: rest ->
        (match Epic_sim.Sampling.parse_spec v with
        | plan -> sample_plan := plan
        | exception Invalid_argument e ->
            Printf.eprintf "%s\n" e;
            exit 2);
        split_opts acc rest
    | a :: rest -> split_opts (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = split_opts [] args in
  let json_file = !json_file in
  let workloads =
    match !subset with
    | None -> Epic_workloads.Suite.all
    | Some names ->
        List.map
          (fun n ->
            match Epic_workloads.Suite.find n with
            | Some w -> w
            | None ->
                Printf.eprintf "unknown workload %S\nknown: %s\n" n
                  (String.concat " " Epic_workloads.Suite.names);
                exit 2)
          names
  in
  let bad = List.filter (fun a -> not (List.mem a all_artifacts)) args in
  if bad <> [] then begin
    Printf.eprintf "unknown artifact(s): %s\nknown: %s\n"
      (String.concat " " bad)
      (String.concat " " all_artifacts);
    exit 2
  end;
  let wanted x =
    if List.mem x explicit_artifacts then List.mem x args
    else args = [] || List.mem x args
  in
  (* -j 0 (the default) resolves to the recommended domain count, capped at
     the number of jobs so no idle domain is ever spawned. *)
  let auto_jobs n_jobs =
    if !jobs >= 1 then !jobs
    else min (Domain.recommended_domain_count ()) (max 1 n_jobs)
  in
  (* One session for the whole invocation: the suite, the sweep and the
     causal matrix all compile through its content-addressed artifact
     cache (the sweep baseline and the suite's ILP-CS column share
     entries, as does the causal --check sweep).  The pool width is the
     suite's; Pool.map never spawns more domains than there are jobs, so
     narrower artifacts are unaffected. *)
  let session =
    Epic_serve.Session.create ~jobs:(auto_jobs (4 * List.length workloads)) ()
  in
  let jobs = Epic_serve.Session.jobs session in
  (* --json needs the suite even if only non-suite artifacts were named. *)
  let needs_suite = List.exists wanted suite_artifacts || json_file <> None in
  (if needs_suite then begin
     Printf.eprintf "running the %d-workload suite under 4 configurations (-j %d)...\n%!"
       (List.length workloads) jobs;
     let s = Epic_serve.Session.suite session ~workloads ~progress:true () in
     (match json_file with
     | Some f ->
         let doc = Epic_core.Export.suite_to_json s in
         let doc = if !normalize_time then Epic_core.Export.normalize_time doc else doc in
         Epic_obs.Json.to_file f doc;
         Printf.eprintf "wrote suite metrics to %s\n%!" f
     | None -> ());
     (match Epic_core.Experiments.mismatches s with
     | [] -> ()
     | bad ->
         List.iter
           (fun (w, l) ->
             Printf.eprintf "FAIL: %s/%s simulated output diverged from the reference interpreter\n"
               w (Epic_core.Config.level_name l))
           bad;
         exit 1);
     if wanted "table1" then Epic_core.Report.print_table1 s;
     if wanted "fig2" then Epic_core.Report.print_fig2 s;
     if wanted "fig5" then Epic_core.Report.print_fig5 s;
     if wanted "fig6" then Epic_core.Report.print_fig6 s;
     if wanted "fig7" then Epic_core.Report.print_fig7 s;
     if wanted "fig8" then Epic_core.Report.print_fig8 s;
     if wanted "fig10" then Epic_core.Report.print_fig10 s;
     if wanted "stats" then Epic_core.Report.print_stats s
   end);
  if wanted "spec_model" then
    Epic_core.Report.print_spec_model (Epic_core.Experiments.spec_model_experiment ());
  if wanted "profvar" then
    Epic_core.Report.print_profvar (Epic_core.Experiments.profile_variation ());
  if wanted "ablations" then
    Epic_core.Report.print_ablations (Epic_core.Experiments.ablations ());
  if wanted "data_spec" then
    Epic_core.Report.print_data_spec (Epic_core.Experiments.data_spec_experiment ());
  if wanted "phases" then phase_benchmarks ();
  if wanted "sweep" then begin
    let open Epic_sweep.Sweep in
    let vs =
      match !sweep_variants with
      | None -> variants
      | Some names ->
          List.map
            (fun n ->
              match find_variant n with
              | Some v -> v
              | None ->
                  Printf.eprintf "unknown variant %S\n" n;
                  exit 2)
            names
    in
    (* sweep defaults to a bounded workload pair; --workloads widens it *)
    let sweep_workloads =
      match !subset with
      | Some names -> names
      | None -> [ "gzip"; "twolf" ]
    in
    Printf.eprintf "running the sensitivity sweep (%d variants, -j %d)...\n%!"
      (List.length vs) jobs;
    let r =
      Epic_serve.Session.sweep session ~variants:vs ~progress:true
        ~workloads:sweep_workloads ()
    in
    print_report Fmt.stdout r;
    (match mismatches r with
    | [] -> ()
    | l ->
        List.iter
          (fun c ->
            Printf.eprintf
              "FAIL: sweep %s/%s/%s simulated output diverged from the reference\n"
              c.c_workload c.c_variant c.c_ablation)
          l;
        exit 1);
    match !sweep_baseline with
    | None -> ()
    | Some f ->
        let norm j =
          Epic_obs.Json.to_string ~pretty:true (Epic_core.Export.normalize_time j)
        in
        let stored =
          match
            In_channel.with_open_text f In_channel.input_all
            |> Epic_obs.Json.of_string
          with
          | Ok j -> j
          | Error e ->
              Printf.eprintf "cannot parse %s: %s\n" f e;
              exit 2
        in
        if norm stored = norm (to_json r) then
          Printf.eprintf "sweep baseline %s matches\n%!" f
        else begin
          Printf.eprintf "FAIL: sweep result differs from baseline %s\n" f;
          exit 1
        end
  end;
  if wanted "sample_acc" then begin
    Printf.eprintf
      "running the sampled-simulation accuracy harness (%d workloads, full + \
       sampled, sequential)...\n%!"
      (List.length workloads);
    let rep = Epic_sample.Sample.run ~plan:!sample_plan ~jobs:1 ~workloads () in
    Epic_sample.Sample.print Fmt.stdout rep;
    (match !sample_json with
    | None -> ()
    | Some f ->
        Epic_obs.Json.to_file f (Epic_sample.Sample.to_json rep);
        Printf.eprintf "wrote sample-accuracy report to %s\n%!" f);
    if not rep.Epic_sample.Sample.pass then exit 1
  end;
  if wanted "causal" then begin
    let open Epic_causal.Causal in
    (* causal defaults to the same bounded pair as sweep; the planner picks
       each workload's targets, and the cross-check gate always runs *)
    let causal_workloads =
      match !subset with Some names -> names | None -> [ "gzip"; "twolf" ]
    in
    Printf.eprintf "running the causal-profiling matrix (-j %d)...\n%!" jobs;
    let r =
      Epic_serve.Session.causal session ~factors:(default_factors)
        ~progress:true ~workloads:causal_workloads ()
    in
    print_report Fmt.stdout r;
    (match r.r_fusion with
    | Some fz ->
        Printf.eprintf
          "causal fusion: %d cells from %d detailed sims (%d saved, %.1f \
           cells/sim) in %.1fs\n\
           %!"
          fz.fz_cells fz.fz_sims
          (fz.fz_cells - fz.fz_sims)
          (float_of_int fz.fz_cells /. float_of_int (max 1 fz.fz_sims))
          r.r_wall_s
    | None -> ());
    (match mismatches r with
    | [] -> ()
    | l ->
        List.iter
          (fun (w, t, f) ->
            Printf.eprintf
              "FAIL: causal %s/%s/%g simulated output diverged from the reference\n"
              w (target_name t) f)
          l;
        exit 1);
    let rows = Epic_serve.Session.causal_check session r in
    let bad = List.filter (fun row -> not row.ck_order_ok) rows in
    List.iter
      (fun row ->
        Printf.eprintf
          "FAIL: causal ranking on %s disagrees with the perfect-* sweep\n"
          row.ck_workload)
      bad;
    if bad <> [] then exit 1;
    Printf.eprintf "causal cross-check: rankings agree on %d workloads\n%!"
      (List.length rows)
  end
