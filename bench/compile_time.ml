(* Compile-time reporter: compiles every suite workload at ILP-CS and prints
   the per-workload compiler wall time (from the per-pass instrumentation
   records), a per-pass total across the suite, and — once the analysis
   cache is in place — the cache hit/miss totals per analysis.

     dune exec bench/compile_time.exe

   Used to compare suite compile time before and after pass-manager /
   analysis-cache changes. *)

open Epic_workloads

let () =
  let totals : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let suite_wall = ref 0. in
  List.iter
    (fun (w : Workload.t) ->
      let config =
        {
          (Epic_core.Config.make Epic_core.Config.ILP_CS) with
          Epic_core.Config.pointer_analysis = w.Workload.pointer_analysis;
        }
      in
      let t0 = Sys.time () in
      let c =
        Epic_core.Driver.compile ~config ~train:w.Workload.train
          w.Workload.source
      in
      let dt = Sys.time () -. t0 in
      suite_wall := !suite_wall +. dt;
      let pass_wall =
        List.fold_left
          (fun a (r : Epic_obs.Passes.record) -> a +. r.Epic_obs.Passes.wall_s)
          0. c.Epic_core.Driver.pass_records
      in
      List.iter
        (fun (r : Epic_obs.Passes.record) ->
          let name = r.Epic_obs.Passes.name in
          if not (Hashtbl.mem totals name) then order := name :: !order;
          Hashtbl.replace totals name
            (r.Epic_obs.Passes.wall_s
            +. Option.value ~default:0. (Hashtbl.find_opt totals name)))
        c.Epic_core.Driver.pass_records;
      Fmt.pr "%-10s  compile %7.3fs  (passes %7.3fs)@." w.Workload.short dt
        pass_wall)
    Suite.all;
  Fmt.pr "@.per-pass totals across the ILP-CS suite:@.";
  List.iter
    (fun name ->
      Fmt.pr "  %-32s %8.3fs@." name (Hashtbl.find totals name))
    (List.rev !order);
  Fmt.pr "@.total ILP-CS suite compile wall time: %.3fs@." !suite_wall
