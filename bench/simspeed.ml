(* Simulator-throughput harness: measures how fast the *host* executes the
   machine simulator, in simulated cycles per host second and retired
   useful-operations MIPS, plus GC allocation pressure.  This is the repo's
   host-performance trajectory: the architectural numbers (cycles, stall
   categories) are invariants guarded elsewhere; this harness guards the
   cost of producing them.

     dune exec bench/simspeed.exe                               # default trio
     dune exec bench/simspeed.exe -- --workloads gzip,twolf
     dune exec bench/simspeed.exe -- --json simspeed.json
     dune exec bench/simspeed.exe -- --check simspeed-baseline.json
     dune exec bench/simspeed.exe -- --sampled --min-speedup 1.5

   `--check FILE` compares per-workload simulated-cycles-per-host-second
   against a stored baseline and fails (exit 1) when any workload is more
   than `--max-slowdown` (default 2.0) times slower — a deliberately
   generous threshold so the CI gate only trips on genuine regressions,
   not on runner noise.  Every measured ratio is printed, pass or fail,
   plus a final verdict line, so a CI log is diagnosable without
   re-running.  Compile time is excluded: only `Driver.run` is timed.
   `--repeat N` (default 1) takes the best of N runs to damp host-side
   noise; the simulated cycle count is asserted identical across repeats
   (the engines are deterministic).

   `--sampled[=I:D[:W]]` additionally times each workload under interval
   sampling (default: the tuned default plan) and prints the per-workload
   wall-clock speedup over the detailed run; `--min-speedup X` fails
   (exit 1) when the geomean speedup falls below X. *)

let default_workloads = [ "gzip"; "twolf"; "vortex" ]

type row = {
  name : string;
  cycles : float; (* simulated cycles (architectural, deterministic) *)
  useful_ops : int;
  wall_s : float; (* best-of-N host seconds for the simulation *)
  sim_mcycles_per_s : float;
  retired_mips : float;
  minor_words : float; (* GC words allocated during the measured run *)
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let measure ?sampling ~repeat (w : Epic_workloads.Workload.t) =
  let config =
    {
      (Epic_core.Config.make Epic_core.Config.ILP_CS) with
      Epic_core.Config.pointer_analysis = w.Epic_workloads.Workload.pointer_analysis;
    }
  in
  let compiled =
    Epic_core.Driver.compile ~config ~train:w.Epic_workloads.Workload.train
      w.Epic_workloads.Workload.source
  in
  let input = w.Epic_workloads.Workload.reference in
  let best = ref infinity in
  let cycles = ref 0. in
  let ops = ref 0 in
  let minor = ref 0. and major = ref 0. in
  let minor_c = ref 0 and major_c = ref 0 in
  for k = 1 to repeat do
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let t0 = Sys.time () in
    let _, _, st = Epic_core.Driver.run ?sampling compiled input in
    let dt = Sys.time () -. t0 in
    let g1 = Gc.quick_stat () in
    let c = Epic_sim.Accounting.total st.Epic_sim.Machine.acc in
    if k > 1 && c <> !cycles then begin
      Printf.eprintf "FATAL: %s simulated %.0f cycles on repeat %d but %.0f before\n"
        w.Epic_workloads.Workload.short c k !cycles;
      exit 2
    end;
    cycles := c;
    ops := st.Epic_sim.Machine.c.Epic_sim.Machine.useful_ops;
    if dt < !best then begin
      best := dt;
      minor := g1.Gc.minor_words -. g0.Gc.minor_words;
      major := g1.Gc.major_words -. g0.Gc.major_words;
      minor_c := g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_c := g1.Gc.major_collections - g0.Gc.major_collections
    end
  done;
  let wall = max !best 1e-9 in
  {
    name = w.Epic_workloads.Workload.short;
    cycles = !cycles;
    useful_ops = !ops;
    wall_s = wall;
    sim_mcycles_per_s = !cycles /. wall /. 1e6;
    retired_mips = float_of_int !ops /. wall /. 1e6;
    minor_words = !minor;
    major_words = !major;
    minor_collections = !minor_c;
    major_collections = !major_c;
  }

let row_to_json (r : row) =
  Epic_obs.Json.Obj
    [
      ("workload", Epic_obs.Json.Str r.name);
      ("cycles", Epic_obs.Json.Float r.cycles);
      ("useful_ops", Epic_obs.Json.Int r.useful_ops);
      ("wall_s", Epic_obs.Json.Float r.wall_s);
      ("sim_mcycles_per_s", Epic_obs.Json.Float r.sim_mcycles_per_s);
      ("retired_mips", Epic_obs.Json.Float r.retired_mips);
      ("minor_words", Epic_obs.Json.Float r.minor_words);
      ("major_words", Epic_obs.Json.Float r.major_words);
      ("minor_collections", Epic_obs.Json.Int r.minor_collections);
      ("major_collections", Epic_obs.Json.Int r.major_collections);
    ]

let geomean = function
  | [] -> 0.
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun a x -> a +. log (max x 1e-12)) 0. xs /. n)

let () =
  let workloads = ref default_workloads in
  let json_file = ref None in
  let check_file = ref None in
  let max_slowdown = ref 2.0 in
  let repeat = ref 1 in
  let sampled = ref None in
  let min_speedup = ref 0. in
  let rec parse = function
    | "--workloads" :: v :: rest ->
        workloads := String.split_on_char ',' v;
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--check" :: f :: rest ->
        check_file := Some f;
        parse rest
    | "--max-slowdown" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x > 0. -> max_slowdown := x
        | _ ->
            Printf.eprintf "--max-slowdown expects a positive number, got %S\n" v;
            exit 2);
        parse rest
    | "--repeat" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> repeat := n
        | _ ->
            Printf.eprintf "--repeat expects a positive integer, got %S\n" v;
            exit 2);
        parse rest
    | "--sampled" :: rest ->
        sampled := Some Epic_sim.Sampling.default_plan;
        parse rest
    | a :: rest when String.length a > 10 && String.sub a 0 10 = "--sampled=" ->
        (match
           Epic_sim.Sampling.parse_spec (String.sub a 10 (String.length a - 10))
         with
        | p -> sampled := Some p
        | exception Invalid_argument m ->
            Printf.eprintf "%s\n" m;
            exit 2);
        parse rest
    | "--min-speedup" :: v :: rest ->
        (match float_of_string_opt v with
        | Some x when x >= 0. -> min_speedup := x
        | _ ->
            Printf.eprintf "--min-speedup expects a non-negative number, got %S\n" v;
            exit 2);
        parse rest
    | a :: _ ->
        Printf.eprintf "unknown argument %S\n" a;
        exit 2
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows =
    List.map
      (fun n ->
        match Epic_workloads.Suite.find n with
        | Some w ->
            Printf.eprintf "simspeed: %s (ILP-CS)...\n%!" n;
            measure ~repeat:!repeat w
        | None ->
            Printf.eprintf "unknown workload %S\nknown: %s\n" n
              (String.concat " " Epic_workloads.Suite.names);
            exit 2)
      !workloads
  in
  Printf.printf "%-10s %14s %10s %12s %12s %14s %8s\n" "workload" "sim cycles"
    "host s" "Mcycles/s" "retired MIPS" "minor words" "minGCs";
  List.iter
    (fun r ->
      Printf.printf "%-10s %14.0f %10.3f %12.2f %12.2f %14.0f %8d\n" r.name
        r.cycles r.wall_s r.sim_mcycles_per_s r.retired_mips r.minor_words
        r.minor_collections)
    rows;
  let geo = geomean (List.map (fun r -> r.sim_mcycles_per_s) rows) in
  Printf.printf "%-10s %52.2f\n" "geomean" geo;
  (* Sampled-path timing: re-measure each workload under interval sampling
     and report the wall-clock speedup over the detailed run just taken. *)
  let sampled_rows =
    match !sampled with
    | None -> []
    | Some plan ->
        Printf.printf "\nsampled path (%s):\n"
          (Epic_sim.Sampling.key_fragment plan);
        Printf.printf "%-10s %10s %10s %9s %14s\n" "workload" "full s"
          "sampled s" "speedup" "est cycles";
        let srows =
          List.map2
            (fun name full ->
              let w = Option.get (Epic_workloads.Suite.find name) in
              Printf.eprintf "simspeed: %s (sampled)...\n%!" name;
              let s = measure ~sampling:plan ~repeat:!repeat w in
              let speedup = full.wall_s /. s.wall_s in
              Printf.printf "%-10s %10.3f %10.3f %8.2fx %14.0f\n" name
                full.wall_s s.wall_s speedup s.cycles;
              (name, s, speedup))
            !workloads rows
        in
        let sgeo = geomean (List.map (fun (_, _, sp) -> sp) srows) in
        Printf.printf "%-10s %31.2fx\n" "geomean" sgeo;
        if !min_speedup > 0. then
          if sgeo < !min_speedup then begin
            Printf.printf
              "sampled speedup: FAIL (geomean %.2fx < required %.2fx)\n" sgeo
              !min_speedup;
            exit 1
          end
          else
            Printf.printf
              "sampled speedup: PASS (geomean %.2fx >= required %.2fx)\n" sgeo
              !min_speedup;
        srows
  in
  (match !json_file with
  | None -> ()
  | Some f ->
      Epic_obs.Json.to_file f
        (Epic_obs.Json.Obj
           ([
              ("bench", Epic_obs.Json.Str "simspeed");
              ("level", Epic_obs.Json.Str "ILP-CS");
              ("geomean_sim_mcycles_per_s", Epic_obs.Json.Float geo);
              ("rows", Epic_obs.Json.List (List.map row_to_json rows));
            ]
           @
           match (!sampled, sampled_rows) with
           | Some plan, (_ :: _ as srows) ->
               [
                 ( "sampled",
                   Epic_obs.Json.Obj
                     [
                       ( "plan",
                         Epic_obs.Json.Str
                           (Epic_sim.Sampling.key_fragment plan) );
                       ( "geomean_speedup",
                         Epic_obs.Json.Float
                           (geomean
                              (List.map (fun (_, _, sp) -> sp) srows)) );
                       ( "rows",
                         Epic_obs.Json.List
                           (List.map
                              (fun (_, r, sp) ->
                                match row_to_json r with
                                | Epic_obs.Json.Obj fields ->
                                    Epic_obs.Json.Obj
                                      (fields
                                      @ [
                                          ( "speedup",
                                            Epic_obs.Json.Float sp );
                                        ])
                                | j -> j)
                              srows) );
                     ] );
               ]
           | _ -> []));
      Printf.eprintf "wrote %s\n%!" f);
  match !check_file with
  | None -> ()
  | Some f ->
      let doc =
        match
          In_channel.with_open_text f In_channel.input_all
          |> Epic_obs.Json.of_string
        with
        | Ok j -> j
        | Error e ->
            Printf.eprintf "cannot parse %s: %s\n" f e;
            exit 2
      in
      let baseline_rate name =
        match Epic_obs.Json.member "rows" doc with
        | Some (Epic_obs.Json.List l) ->
            List.find_map
              (fun r ->
                match
                  ( Epic_obs.Json.member "workload" r,
                    Epic_obs.Json.member "sim_mcycles_per_s" r )
                with
                | Some (Epic_obs.Json.Str n), Some v
                  when n = name ->
                    Epic_obs.Json.to_float_opt v
                | _ -> None)
              l
        | _ -> None
      in
      (* Print every measured ratio, pass or fail, then one verdict line:
         a CI log must be diagnosable without re-running the bench. *)
      let failed = ref false in
      let worst = ref 0. in
      Printf.printf "\ncheck against %s (threshold %.1fx):\n" f !max_slowdown;
      List.iter
        (fun r ->
          match baseline_rate r.name with
          | None ->
              Printf.printf "  %-10s %-4s no baseline entry (skipped)\n"
                r.name "-"
          | Some b ->
              let ratio = b /. max r.sim_mcycles_per_s 1e-12 in
              if ratio > !worst then worst := ratio;
              let over = ratio > !max_slowdown in
              if over then failed := true;
              Printf.printf
                "  %-10s %-4s %8.2f Mcycles/s vs baseline %8.2f (%.2fx \
                 slowdown)\n"
                r.name
                (if over then "FAIL" else "ok")
                r.sim_mcycles_per_s b ratio)
        rows;
      Printf.printf "check: %s (worst slowdown %.2fx, threshold %.1fx)\n"
        (if !failed then "FAIL" else "PASS")
        !worst !max_slowdown;
      if !failed then exit 1
