(* Debug driver: compile every suite workload at every level with the
   analysis cache's self-check enabled — every cache hit is re-validated
   against a fresh recompute, and any stale entry aborts with the offending
   analysis and function.  Used to validate the pass-manager preservation
   contracts.

     dune exec bench/selfcheck.exe *)

open Epic_workloads

let () =
  Epic_analysis.Cache.self_check := true;
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun level ->
          let config =
            {
              (Epic_core.Config.make level) with
              Epic_core.Config.pointer_analysis = w.Workload.pointer_analysis;
            }
          in
          Fmt.pr "%-10s %-8s ... %!" w.Workload.short
            (Epic_core.Config.level_name level);
          let c =
            Epic_core.Driver.compile ~config ~train:w.Workload.train
              w.Workload.source
          in
          ignore c;
          Fmt.pr "ok@.")
        [
          Epic_core.Config.Gcc_like;
          Epic_core.Config.O_NS;
          Epic_core.Config.ILP_NS;
          Epic_core.Config.ILP_CS;
        ])
    Suite.all;
  Fmt.pr "self-check clean: no stale cache entries@."
