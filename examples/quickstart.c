// The quickstart program as a standalone mini-C source, for driving
// `epicc` directly (the same program examples/quickstart.ml embeds):
//
//   dune exec bin/epicc.exe -- examples/quickstart.c -i 7 \
//     --json run.json --trace trace.json --sample-period 97
int data[256];

int sum_if_positive() {
  int i; int s;
  s = 0;
  for (i = 0; i < 256; i = i + 1) {
    if (data[i] > 0) { s = s + data[i]; } else { s = s - 1; }
  }
  return s;
}

int main() {
  int i; int r; int total;
  for (i = 0; i < 256; i = i + 1) { data[i] = (i * 37 + input(0)) % 19 - 6; }
  total = 0;
  for (r = 0; r < 100; r = r + 1) { total = total + sum_if_positive(); }
  print_int(total);
  return 0;
}
